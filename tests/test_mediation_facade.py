"""Tests for the GridVineNetwork facade: misc surface and edge cases."""

import pytest

from repro.mapping.model import MappingKind
from repro.mediation.network import GridVineNetwork
from repro.rdf.parser import ParseError
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema


class TestFacadeBasics:
    def test_build_peer_counts(self):
        net = GridVineNetwork.build(num_peers=10, seed=1)
        assert len(net.peer_ids()) == 10
        assert net.peer(net.peer_ids()[0]).node_id == net.peer_ids()[0]

    def test_random_peer_comes_from_deployment(self):
        net = GridVineNetwork.build(num_peers=5, seed=2)
        assert net.random_peer().node_id in net.peer_ids()

    def test_unknown_origin_raises(self):
        net = GridVineNetwork.build(num_peers=4, seed=3)
        with pytest.raises(KeyError):
            net.search_for("SearchFor(x? : (x?, S#p, %v%))",
                           origin="ghost")

    def test_string_query_parse_errors_propagate(self, small_network):
        with pytest.raises(ParseError):
            small_network.search_for("SELECT * FROM nothing")

    def test_unknown_strategy_rejected(self, fig2_network):
        net, _e, _m = fig2_network
        with pytest.raises(ValueError):
            net.search_for(
                "SearchFor(x? : (x?, EMBL#Organism, %A%))",
                strategy="telepathic")

    def test_insert_schemas_plural(self, small_network):
        schemas = [Schema(f"S{i}", ["a"], domain="plural")
                   for i in range(3)]
        small_network.insert_schemas(schemas)
        small_network.settle()
        records = small_network.connectivity_records("plural")
        assert [r.schema_name for r in records] == ["S0", "S1", "S2"]

    def test_metrics_snapshot_shape(self, small_network):
        snapshot = small_network.metrics_snapshot()
        assert set(snapshot) >= {"messages_sent", "messages_dropped",
                                 "mean_latency", "values_shipped",
                                 "messages_by_kind"}


class TestCreateMapping:
    def test_create_mapping_mints_guid_of_creator(self, fig2_network):
        net, embl, emp = fig2_network
        origin = net.peer_ids()[0]
        mapping = net.create_mapping(
            embl, emp, [("Organism", "SystematicName")], origin=origin)
        creator_path = net.peer(origin).path
        assert mapping.mapping_id.startswith(creator_path.bits + "@")

    def test_create_subsumption_mapping(self, fig2_network):
        net, embl, emp = fig2_network
        mapping = net.create_mapping(
            embl, emp, [("Organism", "SystematicName")],
            kind=MappingKind.SUBSUMPTION)
        assert mapping.correspondences[0].kind is MappingKind.SUBSUMPTION
        # pure-subsumption mappings cannot be reversed
        with pytest.raises(ValueError):
            mapping.reversed()

    def test_create_mapping_validates_attributes(self, fig2_network):
        net, embl, emp = fig2_network
        with pytest.raises(KeyError):
            net.create_mapping(embl, emp, [("NoSuchAttr", "Length")])

    def test_auto_provenance_and_confidence(self, fig2_network):
        net, embl, emp = fig2_network
        mapping = net.create_mapping(
            embl, emp, [("SeqLength", "Length")],
            provenance="auto", confidence=0.6)
        assert not mapping.is_user_defined
        assert mapping.confidence == 0.6


class TestSubsumptionSemantics:
    def test_subsumption_reformulates_one_way_only(self, small_network):
        net = small_network
        broad = Schema("Broad", ["organism"], domain="sub")
        narrow = Schema("Narrow", ["fungus"], domain="sub")
        net.insert_schema(broad)
        net.insert_schema(narrow)
        net.insert_triples([
            Triple(URI("Broad:1"), URI("Broad#organism"),
                   Literal("Aspergillus niger")),
            Triple(URI("Narrow:1"), URI("Narrow#fungus"),
                   Literal("Aspergillus oryzae")),
        ])
        # Narrow#fungus is subsumed by Broad#organism: a query on the
        # broad predicate may soundly be rewritten to the narrow one.
        net.create_mapping(broad, narrow, [("organism", "fungus")],
                           kind=MappingKind.SUBSUMPTION)
        net.settle()
        broad_query = net.search_for(
            "SearchFor(x? : (x?, Broad#organism, %Aspergillus%))",
            strategy="iterative")
        assert broad_query.result_count == 2  # broad + subsumed narrow
        narrow_query = net.search_for(
            "SearchFor(x? : (x?, Narrow#fungus, %Aspergillus%))",
            strategy="iterative")
        # the reverse rewriting would be unsound and must not happen
        assert narrow_query.result_count == 1


class TestOutcomeAccounting:
    def test_results_by_query_partitions_results(self, fig2_network):
        net, embl, emp = fig2_network
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        out = net.search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))",
            strategy="iterative")
        union = set()
        for rows in out.results_by_query.values():
            union |= rows
        assert union == out.results

    def test_messages_attributed(self, fig2_network):
        net, _embl, _emp = fig2_network
        out = net.search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))",
            strategy="local")
        assert out.messages > 0
