"""Tests for the relational algebra engine (π, σ, ⋈, ∪, ρ)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.relation import Relation

rows_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20
)


class TestConstruction:
    def test_empty_relation(self):
        r = Relation(("a",), [])
        assert len(r) == 0

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation(("a", "a"), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Relation(("a", "b"), [(1,)])

    def test_immutable(self):
        r = Relation(("a",), [(1,)])
        with pytest.raises(AttributeError):
            r.columns = ("b",)

    def test_as_dicts(self):
        r = Relation(("a", "b"), [(1, 2)])
        assert r.as_dicts() == [{"a": 1, "b": 2}]


class TestProject:
    def test_keeps_order_of_requested_columns(self):
        r = Relation(("a", "b", "c"), [(1, 2, 3)])
        assert r.project(["c", "a"]).rows == ((3, 1),)

    def test_eliminates_duplicates(self):
        r = Relation(("a", "b"), [(1, 2), (1, 3)])
        assert r.project(["a"]).rows == ((1,),)

    def test_unknown_column_raises(self):
        r = Relation(("a",), [])
        with pytest.raises(KeyError):
            r.project(["zz"])


class TestSelect:
    def test_select_eq_single(self):
        r = Relation(("a", "b"), [(1, 2), (3, 4)])
        assert r.select_eq(a=3).rows == ((3, 4),)

    def test_select_eq_conjunction(self):
        r = Relation(("a", "b"), [(1, 2), (1, 4)])
        assert r.select_eq(a=1, b=4).rows == ((1, 4),)

    def test_select_predicate(self):
        r = Relation(("a", "b"), [(1, 2), (3, 4)])
        assert r.select(lambda row: row["a"] + row["b"] > 5).rows == ((3, 4),)

    def test_select_keeps_schema(self):
        r = Relation(("a", "b"), [(1, 2)])
        assert r.select_eq(a=99).columns == ("a", "b")


class TestRename:
    def test_rename_subset(self):
        r = Relation(("a", "b"), [(1, 2)])
        renamed = r.rename({"a": "x"})
        assert renamed.columns == ("x", "b")
        assert renamed.rows == r.rows


class TestJoin:
    def test_natural_join_on_shared_column(self):
        left = Relation(("s", "p"), [("s1", "p1"), ("s2", "p1")])
        right = Relation(("p", "o"), [("p1", "o1")])
        joined = left.natural_join(right)
        assert joined.columns == ("s", "p", "o")
        assert sorted(joined.rows) == [("s1", "p1", "o1"),
                                       ("s2", "p1", "o1")]

    def test_join_no_shared_is_cross_product(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("b",), [(3,)])
        joined = left.natural_join(right)
        assert sorted(joined.rows) == [(1, 3), (2, 3)]

    def test_join_on_multiple_columns(self):
        left = Relation(("a", "b", "x"), [(1, 2, "l")])
        right = Relation(("a", "b", "y"), [(1, 2, "r"), (1, 9, "no")])
        joined = left.natural_join(right)
        assert joined.rows == ((1, 2, "l", "r"),)

    def test_self_join_triple_table(self):
        # The paper's conjunctive queries are self joins of the triple
        # table: entries with both Organism and SeqLength attributes.
        db = Relation(
            ("subject", "predicate", "object"),
            [("e1", "Organism", "Aspergillus"),
             ("e1", "SeqLength", "120"),
             ("e2", "Organism", "Yeast")],
        )
        organisms = db.select_eq(predicate="Organism").project(
            ["subject", "object"]).rename({"object": "org"})
        lengths = db.select_eq(predicate="SeqLength").project(
            ["subject", "object"]).rename({"object": "len"})
        joined = organisms.natural_join(lengths)
        assert joined.rows == (("e1", "Aspergillus", "120"),)

    @given(rows_strategy, rows_strategy)
    def test_join_is_commutative_up_to_column_order(self, lrows, rrows):
        left = Relation(("a", "b"), lrows)
        right = Relation(("b", "c"), rrows)
        lr = left.natural_join(right)
        rl = right.natural_join(left)
        assert sorted(lr.project(["a", "b", "c"]).rows) == sorted(
            rl.project(["a", "b", "c"]).rows)


class TestUnionDistinct:
    def test_union_dedupes(self):
        a = Relation(("x",), [(1,), (2,)])
        b = Relation(("x",), [(2,), (3,)])
        assert sorted(a.union(b).rows) == [(1,), (2,), (3,)]

    def test_union_schema_mismatch_rejected(self):
        a = Relation(("x",), [])
        b = Relation(("y",), [])
        with pytest.raises(ValueError):
            a.union(b)

    def test_distinct(self):
        r = Relation(("x",), [(1,), (1,), (2,)])
        assert sorted(r.distinct().rows) == [(1,), (2,)]

    @given(rows_strategy)
    def test_union_idempotent(self, rows):
        r = Relation(("a", "b"), rows)
        assert sorted(r.union(r).rows) == sorted(r.distinct().rows)
