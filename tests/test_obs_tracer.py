"""Unit tests: span ids, tracer buffer, JSONL export, trace analysis."""

import json

from repro.obs.analysis import (
    attribution_stats,
    connected_components,
    critical_path,
    critical_path_lines,
    format_stats,
    load_any,
    load_jsonl,
    spans_of,
    summary_lines,
    top_slowest,
    trace_summaries,
    trace_tree,
    waterfall,
)
from repro.obs.context import derive_span_id
from repro.obs.tracer import (
    Tracer,
    export_records_jsonl,
    merge_records,
    record_sort_key,
)


class TestSpanIds:
    def test_deterministic(self):
        assert derive_span_id(0, "p", 3) == derive_span_id(0, "p", 3)

    def test_seed_peer_and_seq_all_bind(self):
        base = derive_span_id(0, "p", 3)
        assert derive_span_id(1, "p", 3) != base
        assert derive_span_id(0, "q", 3) != base
        assert derive_span_id(0, "p", 4) != base

    def test_readable_prefix(self):
        assert derive_span_id(0, "peer-7", 2).startswith("peer-7.2.")

    def test_tracer_sequences_per_peer(self):
        tracer = Tracer(seed=5)
        assert tracer.next_span_id("a") == derive_span_id(5, "a", 0)
        assert tracer.next_span_id("a") == derive_span_id(5, "a", 1)
        assert tracer.next_span_id("b") == derive_span_id(5, "b", 0)


class TestTracer:
    def test_span_lifecycle(self):
        tracer = Tracer()
        root = tracer.start_trace("t", "query", peer="a", start=0.0)
        with tracer.activate(tracer.context_of(root)):
            child = tracer.begin("hop", peer="a", kind="message",
                                 start=1.0)
        assert child["parent"] == root["span"]
        assert child["trace"] == "t"
        tracer.finish(child, 2.0)
        assert (child["end"], child["status"]) == (2.0, "ok")

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_trace("t", "op", peer="a", start=0.0)
        tracer.finish(span, 1.0, "timeout")
        tracer.finish(span, 9.0, "ok")
        assert (span["end"], span["status"]) == (1.0, "timeout")

    def test_attrs_recorded_only_when_present(self):
        tracer = Tracer()
        plain = tracer.start_trace("t", "op", peer="a", start=0.0)
        tagged = tracer.start_trace("u", "op", peer="a", start=0.0,
                                    queries=4)
        assert "attrs" not in plain
        assert tagged["attrs"] == {"queries": 4}
        tracer.finish(tagged, 1.0, rows=2)
        assert tagged["attrs"] == {"queries": 4, "rows": 2}

    def test_event_dropped_without_context(self):
        tracer = Tracer()
        tracer.event("orphan", peer="a", time=0.0)
        assert tracer.records == []
        root = tracer.start_trace("t", "op", peer="a", start=0.0)
        with tracer.activate(tracer.context_of(root)):
            tracer.event("fault:delay", peer="a", time=0.5, extra=1.0)
        record = tracer.records[-1]
        assert record["parent"] == root["span"]
        assert record["attrs"] == {"extra": 1.0}

    def test_bounded_buffer_counts_drops(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.start_trace(f"t{i}", "op", peer="a", start=float(i))
        assert len(tracer.records) == 2
        assert tracer.dropped == 3
        assert tracer.snapshot()["dropped"] == 3

    def test_snapshot_counts(self):
        tracer = Tracer()
        root = tracer.start_trace("t", "op", peer="a", start=0.0)
        with tracer.activate(tracer.context_of(root)):
            tracer.event("note", peer="a", time=0.1)
        assert tracer.snapshot() == {
            "records": 2, "spans": 1, "events": 1, "dropped": 0,
            "traces": 1}


def build_sample_records():
    """One two-hop trace with a drop event, plus a fast second trace."""
    tracer = Tracer()
    root = tracer.start_trace("q:0", "searchfor", peer="a", start=0.0)
    with tracer.activate(tracer.context_of(root)):
        hop = tracer.begin("msg:route", peer="a", kind="message",
                           start=0.0)
        tracer.finish(hop, 0.5, "sent")
        with tracer.activate(tracer.context_of(hop)):
            reply = tracer.begin("msg:reply", peer="b", kind="message",
                                 start=0.5)
            tracer.finish(reply, 1.0, "sent")
            tracer.event("drop:offline", peer="b", time=0.6)
    tracer.finish(root, 1.0)
    other = tracer.start_trace("q:1", "searchfor", peer="a", start=2.0)
    tracer.finish(other, 2.25)
    return tracer.records


class TestAnalysis:
    def test_trace_summaries(self):
        summaries = trace_summaries(build_sample_records())
        assert [s["trace"] for s in summaries] == ["q:0", "q:1"]
        first = summaries[0]
        assert first["spans"] == 3
        assert first["messages"] == 2
        assert first["drops"] == 1
        assert first["duration"] == 1.0
        assert first["peers"] == 2
        assert first["root"] == "searchfor"

    def test_top_slowest_orders_by_duration(self):
        top = top_slowest(build_sample_records(), k=1)
        assert [s["trace"] for s in top] == ["q:0"]

    def test_connected_components(self):
        records = build_sample_records()
        assert connected_components(spans_of(records, "q:0")) == 1
        orphan = {"type": "span", "trace": "q:0", "span": "x",
                  "parent": "missing", "name": "stray", "kind": "op",
                  "peer": "c", "start": 0.0, "end": 0.1,
                  "status": "ok"}
        assert connected_components(
            spans_of(records + [orphan], "q:0")) == 2

    def test_critical_path_walks_to_latest_span(self):
        path = critical_path(build_sample_records(), "q:0")
        assert [s["name"] for s in path] == [
            "searchfor", "msg:route", "msg:reply"]
        lines = critical_path_lines(path)
        assert len(lines) == 3 and "msg:reply" in lines[-1]

    def test_waterfall_renders_nested_bars(self):
        lines = waterfall(build_sample_records(), "q:0", width=20)
        assert lines[0].startswith("trace q:0")
        assert any("msg:route" in line for line in lines)
        annotated = [line for line in lines if "drop:offline" in line]
        assert len(annotated) == 1 and "msg:route" in annotated[0]

    def test_attribution_stats(self):
        table = attribution_stats(build_sample_records())
        assert table[0]["by_kind"] == {"reply": 1, "route": 1}
        assert table[0]["drops"] == {"offline": 1}
        lines = format_stats(table)
        assert "dropped: 1 offline" in lines[0]
        assert summary_lines(trace_summaries(build_sample_records()))

    def test_trace_tree(self):
        tree = trace_tree(build_sample_records(), "q:0")
        assert tree["spans"] == 3
        root = tree["roots"][0]
        assert root["name"] == "searchfor"
        assert root["children"][0]["children"][0]["name"] == "msg:reply"


class TestExport:
    def test_jsonl_round_trip_is_sorted(self, tmp_path):
        records = build_sample_records()
        path = tmp_path / "trace.jsonl"
        count = export_records_jsonl(records, str(path))
        assert count == len(records)
        loaded = load_jsonl(str(path))
        assert loaded == sorted(records, key=record_sort_key)
        assert load_any(str(path)) == loaded
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)

    def test_tracer_export_matches_module_export(self, tmp_path):
        tracer = Tracer()
        tracer.records = build_sample_records()
        direct = tmp_path / "a.jsonl"
        module = tmp_path / "b.jsonl"
        tracer.export_jsonl(str(direct))
        export_records_jsonl(tracer.records, str(module))
        assert direct.read_text() == module.read_text()

    def test_merge_records_is_order_insensitive(self):
        records = build_sample_records()
        first = merge_records([records[:2], records[2:]])
        second = merge_records([records[2:], records[:2]])
        assert first == second == sorted(records, key=record_sort_key)
