"""Property tests: columnar operators vs naive dict-row semantics.

The columnar :class:`~repro.exec.stream.Batch` plane exists purely
for speed — every operator must produce *exactly* the rows (and row
order) that the obvious dict-row implementation produces.  Each
property here drives one operator (join, dedup, project, union,
limit) with generated batches over small colliding value pools and
compares against an independent naive reference computed on binding
dicts.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.exec.bindings import join_batches
from repro.exec.operators import Dedup, Limit, Project, Union
from repro.exec.stream import Batch, Operator
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import Literal, URI, Variable

from .settings import STANDARD_SETTINGS

#: tiny pools so generated rows collide on values and schemas share
#: variables — the cases where join keys and dedup sets earn their keep
VARIABLES = tuple(Variable(name) for name in ("a", "b", "c", "d"))
VALUES = tuple(URI(f"e{i}") for i in range(3)) + (Literal("v0"),
                                                  Literal("v1"))

schemas = st.lists(st.sampled_from(VARIABLES), unique=True,
                   min_size=1, max_size=3).map(tuple)


@st.composite
def batches(draw, schema=None):
    if schema is None:
        schema = draw(schemas)
    width = len(schema)
    rows = draw(st.lists(
        st.tuples(*[st.sampled_from(VALUES)] * width), max_size=8))
    return Batch.from_tuples(schema, rows)


@st.composite
def batch_sequences(draw, max_batches=4):
    """Several batches sharing one schema (a stream's slot traffic)."""
    schema = draw(schemas)
    count = draw(st.integers(min_value=1, max_value=max_batches))
    return [draw(batches(schema=schema)) for _ in range(count)]


class _Sink(Operator):
    def __init__(self):
        super().__init__("property-sink")
        self.rows = []
        self.schemas = []

    def on_batch(self, batch, slot):
        self.rows.extend(batch.to_bindings())
        self.schemas.append(batch.schema)


def naive_join(left_rows, right_rows):
    """Nested-loop natural join on binding dicts, left-outer order."""
    out = []
    for lb in left_rows:
        for rb in right_rows:
            if all(lb[v] == rb[v] for v in lb if v in rb):
                merged = dict(lb)
                merged.update(rb)
                out.append(merged)
    return out


class TestJoinProperty:
    @STANDARD_SETTINGS
    @given(batches(), batches())
    def test_join_matches_naive_reference(self, left, right):
        joined = join_batches(left, right)
        expected = naive_join(left.to_bindings(), right.to_bindings())
        assert joined.to_bindings() == expected

    @STANDARD_SETTINGS
    @given(batches())
    def test_unit_relation_is_identity(self, batch):
        unit = Batch((), count=1)
        assert join_batches(unit, batch).to_bindings() == \
            batch.to_bindings()
        assert join_batches(batch, unit).to_bindings() == \
            batch.to_bindings()

    @STANDARD_SETTINGS
    @given(batches(), batches())
    def test_join_schema_is_left_then_right_only(self, left, right):
        joined = join_batches(left, right)
        lset = set(left.schema)
        assert joined.schema == left.schema + tuple(
            v for v in right.schema if v not in lset)


class TestDedupProperty:
    @STANDARD_SETTINGS
    @given(batch_sequences())
    def test_dedup_matches_first_occurrence_reference(self, stream):
        dedup, sink = Dedup(), _Sink()
        dedup.connect(sink)
        for batch in stream:
            dedup.on_batch(batch, 0)
        seen, expected = set(), []
        for batch in stream:
            for row in batch.tuples():
                if row not in seen:
                    seen.add(row)
                    expected.append(dict(zip(batch.schema, row)))
        assert sink.rows == expected


class TestProjectProperty:
    @STANDARD_SETTINGS
    @given(st.data())
    def test_project_matches_column_selection(self, data):
        batch = data.draw(batches())
        distinguished = tuple(data.draw(st.lists(
            st.sampled_from(VARIABLES), unique=True,
            min_size=1, max_size=2)))
        # Patterns covering every pool variable, so any drawn
        # distinguished tuple is a valid query head.
        query = ConjunctiveQuery(
            [TriplePattern(VARIABLES[0], URI("S#p"), VARIABLES[1]),
             TriplePattern(VARIABLES[2], URI("S#q"), VARIABLES[3])],
            distinguished=distinguished)
        project = Project(query)
        sink = _Sink()
        project.connect(sink)
        project.on_batch(batch, 0)
        if batch.count and all(v in batch.schema for v in distinguished):
            expected = [{v: row[v] for v in distinguished}
                        for row in batch.to_bindings()]
        else:
            expected = []
        assert sink.rows == expected
        assert all(schema == distinguished for schema in sink.schemas)


class TestUnionProperty:
    @STANDARD_SETTINGS
    @given(batch_sequences(), batch_sequences())
    def test_union_concatenates_in_arrival_order(self, first, second):
        union, sink = Union(), _Sink()
        union.connect(sink)
        arrival = []
        for batch in first:
            union.on_batch(batch, 0)
            arrival.extend(batch.to_bindings())
        for batch in second:
            union.on_batch(batch, 1)
            arrival.extend(batch.to_bindings())
        assert sink.rows == arrival


class TestLimitProperty:
    @STANDARD_SETTINGS
    @given(batch_sequences(max_batches=5),
           st.integers(min_value=1, max_value=6))
    def test_limit_matches_distinct_counting_reference(self, stream,
                                                       limit):
        op, sink = Limit(limit), _Sink()
        op.connect(sink)
        for batch in stream:
            op.on_batch(batch, 0)
        # Reference semantics: duplicates pass without counting; the
        # batch that fills the cap is truncated right there; later
        # batches are dropped entirely.
        seen: set = set()
        expected = []
        accepting = True
        for batch in stream:
            if not accepting:
                break
            emitted = []
            for row in batch.tuples():
                if row in seen:
                    emitted.append(row)
                    continue
                if len(seen) >= limit:
                    break
                seen.add(row)
                emitted.append(row)
            expected.extend(dict(zip(batch.schema, row))
                            for row in emitted)
            if len(seen) >= limit:
                accepting = False
        assert sink.rows == expected
        assert len({tuple(sorted((v.value, str(t)) for v, t in r.items()))
                    for r in sink.rows}) <= limit

    @STANDARD_SETTINGS
    @given(batch_sequences())
    def test_limit_none_is_pass_through(self, stream):
        op, sink = Limit(None), _Sink()
        op.connect(sink)
        everything = []
        for batch in stream:
            op.on_batch(batch, 0)
            everything.extend(batch.to_bindings())
        assert sink.rows == everything
