"""Shared Hypothesis strategies and settings profiles for the suite.

Import the tiered settings from here::

    from strategies import STANDARD_SETTINGS

(test modules live in a rootdir-anchored sys.path, like the
benchmarks' ``from conftest import ...``).
"""

from strategies.settings import (
    DETERMINISM_SETTINGS,
    QUICK_SETTINGS,
    SLOW_SETTINGS,
    STANDARD_SETTINGS,
    STATE_MACHINE_SETTINGS,
)
from strategies.synopses import peer_synopses, triples

__all__ = [
    "DETERMINISM_SETTINGS",
    "QUICK_SETTINGS",
    "SLOW_SETTINGS",
    "STANDARD_SETTINGS",
    "STATE_MACHINE_SETTINGS",
    "peer_synopses",
    "triples",
]
