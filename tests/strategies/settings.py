"""Standardized Hypothesis settings profiles for property tests.

Tiers (example counts scale with how cheap one example is):

- ``DETERMINISM_SETTINGS``: 500 examples — hash/canonicalization
  invariants where a single counterexample would break bit-for-bit
  reproducibility.
- ``STATE_MACHINE_SETTINGS``: 200 examples — rule-based stateful
  tests.
- ``STANDARD_SETTINGS``: 100 examples — regular property tests.
- ``SLOW_SETTINGS``: 50 examples — tests that build real overlays or
  run short simulations per example.
- ``QUICK_SETTINGS``: 20 examples — fast validation-only checks.

Deadlines are disabled across the board: examples that run a
discrete-event simulation have wall-clock costs unrelated to their
correctness, and the default 200 ms deadline turns them flaky on
loaded CI machines.
"""

from hypothesis import settings

DETERMINISM_SETTINGS = settings(max_examples=500, deadline=None)
STATE_MACHINE_SETTINGS = settings(max_examples=200, deadline=None)
STANDARD_SETTINGS = settings(max_examples=100, deadline=None)
SLOW_SETTINGS = settings(max_examples=50, deadline=None)
QUICK_SETTINGS = settings(max_examples=20, deadline=None)
