"""Stateful property test: synopsis anti-entropy under partitions.

A Hypothesis rule machine drives arbitrary interleavings of

* **partition** — cut the deployment in two (any split point,
  symmetric or one-way) through the fault injector;
* **heal** — lift the cut;
* **mutate** — insert a triple into some peer's local database,
  bumping its synopsis version;
* **pull** — run an anti-entropy sweep from the observing origin
  (pulls crossing an active cut simply vanish — that is the point);

and asserts, whenever it heals and sweeps, the synopsis-convergence
invariant from the fault lab: the origin's CRDT registry holds every
peer's *newest* digest.  Registry merges are commutative, idempotent
and associative (property-tested in ``tests/strategies/synopses.py``),
so no partition/mutation/pull schedule may leave the healed sweep
short of convergence.
"""

import itertools
import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.faultlab import FaultInjector, FaultPlan, Partition
from repro.faultlab.invariants import (
    LabContext,
    check_synopsis_convergence,
)
from repro.mediation.network import GridVineNetwork
from repro.rdf.terms import URI, Literal
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.stats.gossip import StatsAntiEntropy

NUM_PEERS = 8


def build_net() -> GridVineNetwork:
    net = GridVineNetwork.build(num_peers=NUM_PEERS, seed=11,
                                replication=2)
    net.insert_schema(Schema("S", ["p"], domain="d"))
    net.insert_triples([
        Triple(URI(f"S:seed{i}"), URI("S#p"), Literal(f"v{i}"))
        for i in range(4)
    ])
    net.settle()
    return net


class PartitionHealPullMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.net = build_net()
        self.peer_ids = sorted(self.net.peers)
        self.origin = self.peer_ids[0]
        self.anti = StatsAntiEntropy(self.net.peers, self.origin,
                                     rng=random.Random(5))
        self.injector = None
        self._fresh = itertools.count()

    def _heal(self):
        if self.injector is not None:
            self.injector.uninstall()
            self.injector = None

    @rule(cut=st.integers(min_value=1, max_value=NUM_PEERS - 1),
          symmetric=st.booleans())
    def partition(self, cut, symmetric):
        """Cut the network at an arbitrary point (replaces any cut)."""
        self._heal()
        plan = FaultPlan(seed=0, faults=(
            Partition(side_a=tuple(self.peer_ids[:cut]),
                      side_b=tuple(self.peer_ids[cut:]),
                      symmetric=symmetric),
        ))
        self.injector = FaultInjector(self.net.network, plan).install()

    @rule()
    def heal(self):
        self._heal()

    @rule(index=st.integers(min_value=0, max_value=NUM_PEERS - 1))
    def mutate(self, index):
        """Advance one peer's synopsis version past anything pulled."""
        peer = self.net.peers[self.peer_ids[index]]
        peer.db.add(Triple(URI(f"S:new{next(self._fresh)}"),
                           URI("S#p"), Literal("x")))

    @rule()
    def pull(self):
        """A sweep that may race an active partition (pulls crossing
        the cut are dropped; partial progress must never corrupt the
        registry)."""
        self.anti.sweep()
        self.net.loop.run_until(self.net.loop.now + 5.0)

    @rule()
    def heal_and_converge(self):
        """The invariant: heal + one sweep => full convergence."""
        self._heal()
        self.anti.sweep()
        self.net.settle()
        gaps = check_synopsis_convergence(
            LabContext(net=self.net, origin=self.origin))
        assert gaps == [], "\n".join(gaps)

    def teardown(self):
        self._heal()


# Each example builds a real 8-peer deployment, so the budget trades
# example count for step depth (the interleavings are what matter).
TestPartitionAntiEntropy = PartitionHealPullMachine.TestCase
TestPartitionAntiEntropy.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None)
