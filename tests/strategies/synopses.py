"""Hypothesis strategies for synopsis digests and small triples.

Value pools are deliberately tiny so generated digests collide on peer
ids, versions and predicates — exactly the cases where merge-order
independence (commutativity/idempotence) could break.
"""

from hypothesis import strategies as st

from repro.rdf.terms import URI, Literal
from repro.rdf.triples import Triple
from repro.stats.synopsis import MappingEdge, PeerSynopsis, PredicateDigest

subjects = st.sampled_from([URI(f"S:e{i}") for i in range(5)])
predicates = st.sampled_from(
    [URI(f"S#p{i}") for i in range(3)] + [URI(f"T#q{i}") for i in range(2)]
)
objects = st.sampled_from(
    [Literal(f"v{i}") for i in range(4)] + [URI("S:e0")]
)

#: small ground triples over colliding term pools
triples = st.builds(Triple, subjects, predicates, objects)

predicate_digests = st.builds(
    PredicateDigest,
    predicate=st.sampled_from(["S#p0", "S#p1", "T#q0"]),
    triples=st.integers(min_value=0, max_value=60),
    distinct_subjects=st.integers(min_value=0, max_value=20),
    distinct_objects=st.integers(min_value=0, max_value=20),
    top_objects=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.integers(min_value=1, max_value=9)),
        max_size=3,
    ).map(tuple),
)

mapping_edges = st.builds(
    MappingEdge,
    source=st.sampled_from(["S", "T"]),
    target=st.sampled_from(["T", "U"]),
    confidence=st.sampled_from([0.5, 0.8, 1.0]),
)

#: digests with colliding peer ids and versions
peer_synopses = st.builds(
    PeerSynopsis,
    peer_id=st.sampled_from(["n0", "n1", "n2"]),
    version=st.integers(min_value=0, max_value=4),
    triples=st.integers(min_value=0, max_value=100),
    predicates=st.lists(predicate_digests, max_size=3).map(tuple),
    mappings=st.lists(mapping_edges, max_size=2).map(tuple),
)
