"""Shared fixtures for the GridVine reproduction test suite."""

import pytest

from repro import GridVineNetwork, Literal, Schema, Triple, URI


@pytest.fixture
def small_network():
    """A 16-peer network with constant latency (fast, deterministic)."""
    return GridVineNetwork.build(num_peers=16, seed=7)


@pytest.fixture
def fig2_network(small_network):
    """The Figure 2 setup: EMBL + EMP schemas, data, no mapping yet.

    Returns ``(network, embl_schema, emp_schema)``.
    """
    net = small_network
    embl = Schema("EMBL", ["Organism", "SeqLength"], domain="bio")
    emp = Schema("EMP", ["SystematicName", "Length"], domain="bio")
    net.insert_schema(embl)
    net.insert_schema(emp)
    net.insert_triples([
        Triple(URI("EMBL:A78712"), URI("EMBL#Organism"),
               Literal("Aspergillus niger")),
        Triple(URI("EMBL:A78767"), URI("EMBL#Organism"),
               Literal("Aspergillus awamori")),
        Triple(URI("EMBL:X99012"), URI("EMBL#Organism"),
               Literal("Saccharomyces cerevisiae")),
        Triple(URI("EMP:NEN94295-05"), URI("EMP#SystematicName"),
               Literal("Aspergillus oryzae")),
    ])
    net.settle()
    return net, embl, emp


@pytest.fixture(scope="session")
def bio_dataset():
    """A small generated corpus shared by selforg/datagen tests."""
    from repro.datagen import BioDatasetGenerator
    return BioDatasetGenerator(
        num_schemas=8, num_entities=80, entities_per_schema=25, seed=3,
    ).generate()
