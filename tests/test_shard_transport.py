"""Determinism and equivalence guarantees of the sharded transport.

Three tiers of pinning:

* **run-to-run** — the same spec produces bit-identical observable
  traces (op ref -> summarized outcome) on repeated runs;
* **inline vs process** — the worker mode is an implementation detail:
  forked shard workers produce the same trace as the in-process loop
  over shard objects, byte for byte;
* **sharded vs single-loop** — across *engines* the guarantee is
  statistical: identical success counts when nothing churns (the
  deployment fixes every outcome), close recall under churn (peers
  consume their private rng in message-arrival order, which
  legitimately differs between engines).
"""

import pytest

from repro.pgrid.construction import assign_paths
from repro.pgrid.peer import PGridPeer
from repro.pgrid.scaleout import (
    ScaleoutSpec,
    build_deployment,
    run_inprocess,
    run_sharded,
)
from repro.simnet.churn import exponential_schedule
from repro.simnet.events import SimulationError
from repro.simnet.latency import ConstantLatency, LogNormalWANLatency
from repro.simnet.shard import ShardedTransport, partition_paths
from repro.util.keys import Key


def small_spec(**overrides):
    """A deployment small enough for test-suite latency budgets."""
    defaults = dict(num_peers=300, replication=3, seed=7, num_shards=3,
                    num_keys=50, ops_per_wave=25, num_waves=2,
                    duration=40.0, mean_uptime=60.0, mean_downtime=20.0,
                    wave_interval=18.0)
    defaults.update(overrides)
    return ScaleoutSpec(**defaults)


# ----------------------------------------------------------------------
# partition_paths: trie key space -> contiguous shard runs
# ----------------------------------------------------------------------

class TestPartitionPaths:
    def test_covers_every_node_with_valid_shard_ids(self):
        assignment = assign_paths(200, replication=2)
        owner = partition_paths(assignment, 4)
        assert set(owner) == set(assignment)
        assert set(owner.values()) <= set(range(4))

    def test_replica_groups_stay_intra_shard(self):
        # All peers sharing a leaf path land on one shard, so replica
        # traffic never crosses a window barrier.
        assignment = assign_paths(200, replication=4)
        owner = partition_paths(assignment, 4)
        by_path = {}
        for node_id, path in assignment.items():
            by_path.setdefault(path.bits, set()).add(owner[node_id])
        assert all(len(shards) == 1 for shards in by_path.values())

    def test_contiguous_in_trie_order_and_balanced(self):
        assignment = assign_paths(400, replication=2)
        owner = partition_paths(assignment, 4)
        leaf_shards = sorted({(path.bits, owner[node_id])
                              for node_id, path in assignment.items()})
        shard_sequence = [shard for _bits, shard in leaf_shards]
        assert shard_sequence == sorted(shard_sequence)
        counts = [0, 0, 0, 0]
        for node_id in assignment:
            counts[owner[node_id]] += 1
        assert max(counts) <= 2 * min(counts)

    def test_single_shard_owns_everything(self):
        assignment = assign_paths(50)
        assert set(partition_paths(assignment, 1).values()) == {0}


# ----------------------------------------------------------------------
# exponential_schedule: engine-neutral churn traces
# ----------------------------------------------------------------------

class TestExponentialSchedule:
    def test_deterministic_and_sorted(self):
        nodes = [f"peer-{i}" for i in range(40)]
        a = exponential_schedule(nodes, 30.0, 10.0, 200.0, seed=5)
        b = exponential_schedule(nodes, 30.0, 10.0, 200.0, seed=5)
        assert a == b and a
        assert a == sorted(a, key=lambda t: (t[0], t[1]))
        assert all(0 < t < 200.0 for t, _n, _o in a)

    def test_alternates_and_never_strands_a_node(self):
        nodes = [f"peer-{i}" for i in range(40)]
        toggles = exponential_schedule(nodes, 20.0, 15.0, 300.0, seed=1)
        per_node = {}
        for _t, node_id, online in toggles:
            per_node.setdefault(node_id, []).append(online)
        for states in per_node.values():
            assert states[0] is False          # first toggle: go down
            assert states[-1] is True          # trace ends online
            assert all(x != y for x, y in zip(states, states[1:]))

    def test_seed_changes_trace(self):
        nodes = [f"peer-{i}" for i in range(40)]
        assert exponential_schedule(nodes, 30.0, 10.0, 200.0, seed=1) \
            != exponential_schedule(nodes, 30.0, 10.0, 200.0, seed=2)


# ----------------------------------------------------------------------
# Windowed transport misuse
# ----------------------------------------------------------------------

class TestTransportGuards:
    def _transport(self, **kwargs):
        kwargs.setdefault("latency", ConstantLatency(0.05))
        return ShardedTransport(2, **kwargs)

    def _peer(self, name="peer-0", path="0"):
        return PGridPeer(name, Key(path))

    def test_requires_lookahead_or_explicit_window(self):
        # A WAN model with min_delay() == 0 has no conservative
        # lookahead; the transport must refuse rather than deadlock.
        with pytest.raises(SimulationError):
            ShardedTransport(2, latency=LogNormalWANLatency())
        ShardedTransport(2, latency=LogNormalWANLatency(), window=0.5)

    def test_rejects_duplicate_and_post_start_peers(self):
        transport = self._transport()
        transport.add_peer(self._peer(), 0)
        with pytest.raises(SimulationError):
            transport.add_peer(self._peer(), 1)
        transport.start()
        with pytest.raises(SimulationError):
            transport.add_peer(self._peer("peer-1", "1"), 1)
        transport.stop()

    def test_rejects_toggles_for_unknown_nodes_and_past_times(self):
        transport = self._transport()
        transport.add_peer(self._peer(), 0)
        with pytest.raises(SimulationError):
            transport.set_online_at(1.0, "nobody", False)
        transport.set_online_at(1.0, "peer-0", False)
        transport.set_online_at(2.0, "peer-0", True)
        transport.run_until(5.0)
        with pytest.raises(SimulationError):
            transport.set_online_at(3.0, "peer-0", False)
        transport.stop()


# ----------------------------------------------------------------------
# Tier 1: bit-identical within the sharded engine
# ----------------------------------------------------------------------

class TestShardedDeterminism:
    def test_run_to_run_identical(self):
        first = run_sharded(small_spec())
        second = run_sharded(small_spec())
        assert first.outcomes == second.outcomes
        assert first.messages_sent == second.messages_sent
        assert first.events_processed == second.events_processed

    def test_run_to_run_identical_under_churn(self):
        first = run_sharded(small_spec(churn=True))
        second = run_sharded(small_spec(churn=True))
        assert first.outcomes == second.outcomes
        assert first.messages_sent == second.messages_sent

    def test_inline_matches_process_workers(self):
        spec = small_spec(churn=True, num_shards=2)
        deployment = build_deployment(spec)
        inline = run_sharded(small_spec(churn=True, num_shards=2,
                                        mode="inline"), deployment)
        forked = run_sharded(small_spec(churn=True, num_shards=2,
                                        mode="process"), deployment)
        assert inline.outcomes == forked.outcomes
        assert inline.messages_sent == forked.messages_sent
        assert inline.events_processed == forked.events_processed

    def test_shard_count_preserves_success_outcomes(self):
        # Different shard counts window the same traffic differently,
        # but all-online the per-op success verdicts cannot change.
        spec = small_spec()
        deployment = build_deployment(spec)
        reports = [run_sharded(small_spec(num_shards=n), deployment)
                   for n in (1, 2, 4)]
        verdicts = [{ref: out[0] for ref, out in r.outcomes.items()}
                    for r in reports]
        assert verdicts[0] == verdicts[1] == verdicts[2]


# ----------------------------------------------------------------------
# Tier 2: statistical equivalence across engines
# ----------------------------------------------------------------------

class TestEngineEquivalence:
    def test_all_online_success_counts_identical(self):
        spec = small_spec()
        deployment = build_deployment(spec)
        sharded = run_sharded(spec, deployment)
        single = run_inprocess(spec, deployment)
        assert sharded.ops_completed == sharded.ops_issued
        assert single.ops_completed == single.ops_issued
        assert sharded.successes == single.successes == spec.num_waves \
            * spec.ops_per_wave

    def test_churn_recall_close_and_all_ops_complete(self):
        spec = small_spec(churn=True)
        deployment = build_deployment(spec)
        sharded = run_sharded(spec, deployment)
        single = run_inprocess(spec, deployment)
        assert sharded.ops_completed == sharded.ops_issued
        assert single.ops_completed == single.ops_issued
        assert abs(sharded.success_rate - single.success_rate) < 0.15
        assert sharded.successes > 0 and single.successes > 0
