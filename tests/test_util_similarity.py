"""Tests for string and set similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.similarity import (
    dice_coefficient,
    jaccard_similarity,
    jaro_winkler,
    levenshtein,
    ngram_similarity,
    normalized_levenshtein,
    overlap_coefficient,
)

words = st.text(
    alphabet=st.characters(min_codepoint=0x30, max_codepoint=0x7A),
    max_size=20,
)
value_sets = st.sets(st.integers(0, 50), max_size=20)


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("organism", "organism") == 0

    def test_single_insertion(self):
        assert levenshtein("organism", "organisms") == 1

    def test_substitution(self):
        assert levenshtein("cat", "bat") == 1

    def test_empty_sides(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    @given(words, words)
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words, words)
    def test_bounded(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestNormalizedLevenshtein:
    def test_identity_is_one(self):
        assert normalized_levenshtein("abc", "abc") == 1.0

    def test_empty_pair_is_one(self):
        assert normalized_levenshtein("", "") == 1.0

    def test_disjoint_is_zero(self):
        assert normalized_levenshtein("abc", "xyz") == 0.0

    @given(words, words)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0


class TestNgramSimilarity:
    def test_identity(self):
        assert ngram_similarity("Organism", "Organism") == 1.0

    def test_empty(self):
        assert ngram_similarity("", "abc") == 0.0

    def test_case_insensitive(self):
        assert ngram_similarity("ORGANISM", "organism") == 1.0

    def test_reordering_scores_above_edit_distance(self):
        # n-grams are robust to token reordering
        assert (ngram_similarity("SeqLength", "LengthSeq")
                > normalized_levenshtein("SeqLength", "LengthSeq"))

    @given(words, words)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= ngram_similarity(a, b) <= 1.0

    @given(words, words)
    def test_symmetric(self, a, b):
        assert ngram_similarity(a, b) == pytest.approx(
            ngram_similarity(b, a))


class TestJaroWinkler:
    def test_identity(self):
        assert jaro_winkler("organism", "organism") == 1.0

    def test_empty(self):
        assert jaro_winkler("", "abc") == 0.0

    def test_no_common_chars(self):
        assert jaro_winkler("aaa", "bbb") == 0.0

    def test_prefix_bonus(self):
        # Same edits, but shared prefix scores higher.
        with_prefix = jaro_winkler("Organism", "OrganismName")
        without = jaro_winkler("mismatch", "hctamsim")
        assert with_prefix > without

    def test_known_value(self):
        # MARTHA/MARHTA is the canonical Jaro-Winkler example (0.961).
        assert jaro_winkler("MARTHA", "MARHTA") == pytest.approx(
            0.961, abs=0.005)

    @given(words, words)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @given(words, words)
    def test_symmetric(self, a, b):
        assert jaro_winkler(a, b) == pytest.approx(jaro_winkler(b, a))


class TestSetMeasures:
    def test_jaccard_known(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_jaccard_empty_both(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_jaccard_one_empty(self):
        assert jaccard_similarity(set(), {1}) == 0.0

    def test_overlap_detects_containment(self):
        assert overlap_coefficient({1, 2}, {1, 2, 3, 4}) == 1.0
        assert jaccard_similarity({1, 2}, {1, 2, 3, 4}) == 0.5

    def test_overlap_empty(self):
        assert overlap_coefficient(set(), set()) == 1.0
        assert overlap_coefficient(set(), {1}) == 0.0

    def test_dice_known(self):
        assert dice_coefficient({1, 2}, {2, 3}) == pytest.approx(0.5)

    def test_accepts_lists(self):
        assert jaccard_similarity([1, 2, 2], [2]) == 0.5

    @given(value_sets, value_sets)
    def test_all_in_unit_interval(self, a, b):
        for fn in (jaccard_similarity, overlap_coefficient,
                   dice_coefficient):
            assert 0.0 <= fn(a, b) <= 1.0

    @given(value_sets, value_sets)
    def test_all_symmetric(self, a, b):
        for fn in (jaccard_similarity, overlap_coefficient,
                   dice_coefficient):
            assert fn(a, b) == pytest.approx(fn(b, a))

    @given(value_sets)
    def test_identity_is_one(self, a):
        for fn in (jaccard_similarity, overlap_coefficient,
                   dice_coefficient):
            assert fn(a, a) == 1.0

    @given(value_sets, value_sets)
    def test_jaccard_le_dice_le_overlap(self, a, b):
        # Standard ordering of the three coefficients.
        assert (jaccard_similarity(a, b)
                <= dice_coefficient(a, b) + 1e-12)
        assert (dice_coefficient(a, b)
                <= overlap_coefficient(a, b) + 1e-12)
