"""Tests for GUID minting and the statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.guid import mint_guid, split_guid
from repro.util.keys import Key
from repro.util.stats import (
    empirical_cdf_at,
    histogram,
    joint_distribution,
    mean,
    percentile,
)


class TestGuid:
    def test_embeds_peer_path(self):
        guid = mint_guid(Key("0110"), "my-schema")
        assert guid.startswith("0110@")

    def test_distinct_peers_distinct_guids(self):
        assert (mint_guid(Key("01"), "x") != mint_guid(Key("10"), "x"))

    def test_distinct_names_distinct_guids(self):
        assert (mint_guid(Key("01"), "a") != mint_guid(Key("01"), "b"))

    def test_deterministic(self):
        assert mint_guid(Key("01"), "a") == mint_guid(Key("01"), "a")

    def test_split_round_trip(self):
        guid = mint_guid(Key("0110"), "thing")
        path, local = split_guid(guid)
        assert path == Key("0110")
        assert len(local) == 8

    def test_split_rejects_malformed(self):
        with pytest.raises(ValueError):
            split_guid("no-separator")

    @given(st.text(alphabet="01", max_size=16), st.text(min_size=1,
                                                        max_size=30))
    def test_round_trip_property(self, bits, name):
        path, _local = split_guid(mint_guid(Key(bits), name))
        assert path == Key(bits)


class TestStats:
    def test_cdf_known(self):
        assert empirical_cdf_at([0.5, 1.5, 4.0, 9.0], 5.0) == 0.75

    def test_cdf_empty(self):
        assert empirical_cdf_at([], 1.0) == 0.0

    def test_cdf_boundary_inclusive(self):
        assert empirical_cdf_at([1.0], 1.0) == 1.0

    def test_percentile_median(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_percentile_extremes(self):
        xs = [5.0, 1.0, 3.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 5.0

    def test_percentile_single(self):
        assert percentile([7.0], 50) == 7.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_percentile_or_none_empty(self):
        from repro.util.stats import percentile_or_none
        assert percentile_or_none([], 50) is None

    def test_percentile_or_none_matches_percentile(self):
        from repro.util.stats import percentile_or_none
        xs = [5.0, 1.0, 3.0]
        assert percentile_or_none(xs, 90) == percentile(xs, 90)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_histogram(self):
        assert histogram([1, 1, 2]) == {1: 2, 2: 1}

    def test_joint_distribution_sums_to_one(self):
        dist = joint_distribution([(0, 1), (0, 1), (1, 0), (2, 2)])
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[(0, 1)] == pytest.approx(0.5)

    def test_joint_distribution_empty(self):
        assert joint_distribution([]) == {}

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50),
           st.floats(0, 100))
    def test_percentile_within_range(self, xs, q):
        p = percentile(xs, q)
        # small tolerance: linear interpolation can round a hair past
        # the extremes in floating point
        assert min(xs) - 1e-9 <= p <= max(xs) + 1e-9
