"""Tests for the simulated network, latency models and churn."""

import random

import pytest

from repro.simnet.churn import ChurnProcess
from repro.simnet.events import SimulationError
from repro.simnet.latency import (
    ConstantLatency,
    LogNormalWANLatency,
    UniformLatency,
)
from repro.simnet.network import Message, Node, SimNetwork


class Recorder(Node):
    """Test node that records delivered messages."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def make_net(latency=None, seed=0):
    return SimNetwork(latency=latency, rng=random.Random(seed))


class TestSimNetwork:
    def test_send_and_deliver(self):
        net = make_net()
        a, b = Recorder("a"), Recorder("b")
        net.attach(a)
        net.attach(b)
        a.send("b", "ping", {"n": 1})
        net.loop.run_until_idle()
        assert len(b.received) == 1
        assert b.received[0].payload == {"n": 1}
        assert b.received[0].src == "a"

    def test_duplicate_attach_rejected(self):
        net = make_net()
        net.attach(Recorder("a"))
        with pytest.raises(SimulationError):
            net.attach(Recorder("a"))

    def test_unattached_node_cannot_send(self):
        node = Recorder("lonely")
        with pytest.raises(SimulationError):
            node.send("x", "ping")

    def test_send_to_unknown_is_dropped(self):
        net = make_net()
        a = Recorder("a")
        net.attach(a)
        a.send("ghost", "ping")
        net.loop.run_until_idle()
        assert net.metrics.messages_dropped == 1

    def test_send_to_offline_is_dropped(self):
        net = make_net()
        a, b = Recorder("a"), Recorder("b")
        net.attach(a)
        net.attach(b)
        net.set_online("b", False)
        a.send("b", "ping")
        net.loop.run_until_idle()
        assert b.received == []
        assert net.metrics.messages_dropped == 1

    def test_offline_mid_flight_is_dropped(self):
        net = make_net(latency=ConstantLatency(1.0))
        a, b = Recorder("a"), Recorder("b")
        net.attach(a)
        net.attach(b)
        a.send("b", "ping")
        net.loop.schedule(0.5, net.set_online, "b", False)
        net.loop.run_until_idle()
        assert b.received == []
        assert net.metrics.messages_dropped == 1

    def test_detach_removes_node(self):
        net = make_net()
        a = Recorder("a")
        net.attach(a)
        net.detach("a")
        assert "a" not in net
        assert a.network is None

    def test_metrics_accumulate(self):
        net = make_net(latency=ConstantLatency(0.1))
        a, b = Recorder("a"), Recorder("b")
        net.attach(a)
        net.attach(b)
        for _ in range(3):
            a.send("b", "data")
        net.loop.run_until_idle()
        assert net.metrics.messages_sent == 3
        assert net.metrics.messages_by_kind == {"data": 3}
        assert net.metrics.mean_latency == pytest.approx(0.1)

    def test_metrics_reset(self):
        net = make_net()
        a, b = Recorder("a"), Recorder("b")
        net.attach(a)
        net.attach(b)
        a.send("b", "data")
        net.loop.run_until_idle()
        net.metrics.reset()
        assert net.metrics.messages_sent == 0

    def test_node_ids(self):
        net = make_net()
        for name in ("c", "a", "b"):
            net.attach(Recorder(name))
        assert sorted(net.node_ids()) == ["a", "b", "c"]


class TestLatencyModels:
    def test_constant(self):
        m = ConstantLatency(0.2)
        assert m.sample("a", "b", random.Random(0)) == 0.2

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_in_range(self):
        m = UniformLatency(0.1, 0.5)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.1 <= m.sample("a", "b", rng) <= 0.5

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_lognormal_positive(self):
        m = LogNormalWANLatency()
        rng = random.Random(1)
        samples = [m.sample(f"h{i}", f"h{i + 1}", rng) for i in range(200)]
        assert all(s > 0 for s in samples)

    def test_lognormal_base_delay_is_sticky_per_pair(self):
        m = LogNormalWANLatency(jitter_ms=0.0, straggler_prob=0.0)
        rng = random.Random(2)
        first = m.sample("a", "b", rng)
        second = m.sample("a", "b", rng)
        reverse = m.sample("b", "a", rng)
        assert first == second == reverse

    def test_lognormal_stragglers_add_tail(self):
        slow = LogNormalWANLatency(straggler_prob=1.0, straggler_ms=5000.0)
        fast = LogNormalWANLatency(straggler_prob=0.0)
        rng1, rng2 = random.Random(3), random.Random(3)
        slow_mean = sum(slow.sample("a", f"b{i}", rng1)
                        for i in range(100)) / 100
        fast_mean = sum(fast.sample("a", f"b{i}", rng2)
                        for i in range(100)) / 100
        assert slow_mean > fast_mean + 1.0

    def test_lognormal_validates_params(self):
        with pytest.raises(ValueError):
            LogNormalWANLatency(median_ms=0)
        with pytest.raises(ValueError):
            LogNormalWANLatency(straggler_prob=1.5)


class TestChurn:
    def test_failures_and_recoveries_happen(self):
        net = make_net()
        for i in range(10):
            net.attach(Recorder(f"n{i}"))
        churn = ChurnProcess(net, mean_uptime=10.0, mean_downtime=5.0,
                             rng=random.Random(4))
        churn.start()
        net.loop.run_until(200.0)
        churn.stop()
        assert churn.failures > 0
        assert churn.recoveries > 0

    def test_protected_nodes_never_fail(self):
        net = make_net()
        for i in range(5):
            net.attach(Recorder(f"n{i}"))
        churn = ChurnProcess(net, mean_uptime=1.0, mean_downtime=1000.0,
                             rng=random.Random(5), protected={"n0"})
        churn.start()
        net.loop.run_until(50.0)
        assert net.is_online("n0")

    def test_rejects_bad_params(self):
        net = make_net()
        with pytest.raises(ValueError):
            ChurnProcess(net, mean_uptime=0.0)

    def test_stop_halts_new_failures(self):
        net = make_net()
        net.attach(Recorder("a"))
        churn = ChurnProcess(net, mean_uptime=1.0, mean_downtime=0.5,
                             rng=random.Random(6))
        churn.start()
        net.loop.run_until(20.0)
        churn.stop()
        count = churn.failures
        net.loop.run_until(40.0)
        # one in-flight failure may land; no sustained churn after stop
        assert churn.failures <= count + 1


class TestChurnRestart:
    """stop()/start() cycles and fail/recover idempotency."""

    def _churned_net(self, nodes=8, seed=13):
        net = make_net()
        for i in range(nodes):
            net.attach(Recorder(f"n{i}"))
        churn = ChurnProcess(net, mean_uptime=5.0, mean_downtime=10.0,
                             rng=random.Random(seed))
        return net, churn

    def test_restart_does_not_refail_offline_nodes(self):
        """A stop()/start() cycle must not schedule failures for nodes
        that are still offline (the historical double-failure bug)."""
        net, churn = self._churned_net()
        churn.start()
        net.loop.run_until(30.0)
        churn.stop()
        down_at_restart = churn.currently_down()
        assert down_at_restart  # long downtimes: someone is offline
        churn.start()
        net.loop.run_until(200.0)
        churn.stop()
        churn.assert_consistent()

    def test_bookkeeping_consistent_under_restart_storm(self):
        net, churn = self._churned_net()
        for cycle in range(6):
            churn.start()
            net.loop.run_until(net.loop.now + 17.0)
            churn.stop()
            net.loop.run_until(net.loop.now + 3.0)
            churn.assert_consistent()
        # drain pending recoveries: every failure is eventually paired
        net.loop.run_until(net.loop.now + 500.0)
        churn.assert_consistent()
        assert churn.failures == churn.recoveries
        assert all(net.is_online(n) for n in net.node_ids())

    def test_fail_is_idempotent_on_already_offline_node(self):
        net, churn = self._churned_net(nodes=1)
        net.set_online("n0", False)  # external failure
        churn._running = True
        churn._fail("n0", churn._epoch)
        assert churn.failures == 0  # no double-counted failure
        assert churn.currently_down() == set()

    def test_recover_is_idempotent(self):
        net, churn = self._churned_net(nodes=1)
        churn._running = True
        churn._fail("n0", churn._epoch)
        assert churn.failures == 1
        churn._recover("n0")
        churn._recover("n0")  # duplicate event
        assert churn.recoveries == 1
        assert net.is_online("n0")
        churn.assert_consistent()

    def test_stale_epoch_failure_never_fires(self):
        net, churn = self._churned_net(nodes=1)
        churn.start()
        stale_epoch = churn._epoch
        churn.stop()
        churn.start()  # bumps the epoch
        churn._fail("n0", stale_epoch)
        assert churn.failures == 0

    def test_recovery_survives_stop(self):
        """Nodes taken offline are never stranded: pending recoveries
        fire even after stop()."""
        net, churn = self._churned_net()
        churn.start()
        net.loop.run_until(30.0)
        churn.stop()
        assert churn.currently_down()
        net.loop.run_until(500.0)
        assert not churn.currently_down()
        assert all(net.is_online(n) for n in net.node_ids())
