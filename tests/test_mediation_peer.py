"""Tests for GridVinePeer: mediation updates, search, degree records."""

import pytest

from repro.mediation.keys import domain_key, schema_key, triple_keys
from repro.mediation.records import (
    ConnectivityRecord,
    MappingRecord,
    SchemaRecord,
)
from repro.rdf.parser import parse_search_for
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.util.guid import split_guid


TRIPLE = Triple(URI("EMBL:A78712"), URI("EMBL#Organism"),
                Literal("Aspergillus niger"))


class TestTripleInsertion:
    def test_indexed_three_times(self, small_network):
        net = small_network
        origin = net.peer(net.peer_ids()[0])
        net.loop.run_until_complete(origin.insert_triple(TRIPLE))
        net.settle()
        for key in triple_keys(TRIPLE):
            owners = [p for p in net.peers.values()
                      if p.is_responsible_for(key)]
            assert owners
            for owner in owners:
                assert TRIPLE in owner.db

    def test_insertion_costs_three_updates(self, small_network):
        net = small_network
        origin = net.peer(net.peer_ids()[0])
        before = net.metrics_snapshot()["messages_by_kind"].get("route", 0)
        net.loop.run_until_complete(origin.insert_triple(TRIPLE))
        net.settle()
        routes = (net.metrics_snapshot()["messages_by_kind"].get("route", 0)
                  - before)
        # exactly 3 routed updates (some resolved locally cost 0
        # network messages, so routes <= 3 * max_hops but >= 0; the
        # op count is what we check instead)
        assert routes <= 3 * 12
        stored = sum(
            1 for peer in net.peers.values()
            for bucket in peer.store.values()
            for value in bucket
            if getattr(value, "triple", None) == TRIPLE
        )
        assert stored == 3  # one copy per key (replication=1)

    def test_remove_triple(self, small_network):
        net = small_network
        origin = net.peer(net.peer_ids()[0])
        net.loop.run_until_complete(origin.insert_triple(TRIPLE))
        net.settle()
        net.loop.run_until_complete(origin.remove_triple(TRIPLE))
        net.settle()
        for peer in net.peers.values():
            assert TRIPLE not in peer.db


class TestSchemaAndMappingPlacement:
    def test_schema_record_at_schema_key(self, small_network):
        net = small_network
        schema = Schema("EMBL", ["Organism"], domain="bio")
        net.insert_schema(schema)
        net.settle()
        key = schema_key("EMBL")
        for peer in net.peers.values():
            if peer.is_responsible_for(key):
                assert peer.local_schemas["EMBL"] == schema
                assert SchemaRecord(schema) in peer.store[key.bits]

    def test_mapping_stored_at_source_key_space(self, fig2_network):
        net, embl, emp = fig2_network
        mapping = net.create_mapping(embl, emp,
                                     [("Organism", "SystematicName")])
        net.settle()
        source_key = schema_key("EMBL")
        target_key = schema_key("EMP")
        for peer in net.peers.values():
            if peer.is_responsible_for(source_key):
                assert mapping.mapping_id in peer.local_mappings
            if peer.is_responsible_for(target_key):
                assert mapping.mapping_id in peer.incoming_mappings

    def test_bidirectional_mapping_stored_both_sides(self, fig2_network):
        net, embl, emp = fig2_network
        origin = net.peer(net.peer_ids()[0])
        mapping = net.create_mapping(embl, emp,
                                     [("Organism", "SystematicName")])
        # create_mapping is directed; insert the reverse explicitly via
        # the bidirectional flag of insert_mapping
        net.loop.run_until_complete(
            origin.insert_mapping(mapping.reversed(), bidirectional=False))
        net.settle()
        mappings = net.fetch_mappings("EMP")
        assert any(m.source_schema == "EMP" for m in mappings)

    def test_fetch_mappings_filters_deprecated(self, fig2_network):
        net, embl, emp = fig2_network
        mapping = net.create_mapping(embl, emp,
                                     [("Organism", "SystematicName")])
        net.settle()
        assert len(net.fetch_mappings("EMBL")) == 1
        net.deprecate_mapping(mapping)
        net.settle()
        assert net.fetch_mappings("EMBL") == []
        assert len(net.fetch_mappings(
            "EMBL", include_deprecated=True)) == 1


class TestConnectivityRecords:
    def test_schema_with_no_mappings_publishes_zero_degrees(
            self, small_network):
        net = small_network
        net.insert_schema(Schema("Solo", ["a"], domain="bio"))
        net.settle()
        records = net.connectivity_records("bio")
        assert records == [ConnectivityRecord("Solo", 0, 0)]

    def test_degrees_update_on_mapping_insert(self, fig2_network):
        net, embl, emp = fig2_network
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        records = {r.schema_name: r for r in net.connectivity_records("bio")}
        assert records["EMBL"].degree_pair == (0, 1)
        assert records["EMP"].degree_pair == (1, 0)

    def test_degrees_update_on_deprecation(self, fig2_network):
        net, embl, emp = fig2_network
        mapping = net.create_mapping(embl, emp,
                                     [("Organism", "SystematicName")])
        net.settle()
        net.deprecate_mapping(mapping)
        net.settle()
        records = {r.schema_name: r for r in net.connectivity_records("bio")}
        assert records["EMBL"].degree_pair == (0, 0)
        assert records["EMP"].degree_pair == (0, 0)

    def test_one_record_per_schema_despite_updates(self, fig2_network):
        net, embl, emp = fig2_network
        m1 = net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        net.create_mapping(embl, emp, [("SeqLength", "Length")])
        net.settle()
        net.deprecate_mapping(m1)
        net.settle()
        records = net.connectivity_records("bio")
        assert len(records) == 2  # EMBL and EMP exactly once each

    def test_domain_key_space_holds_records(self, small_network):
        net = small_network
        net.insert_schema(Schema("S", ["a"], domain="mydomain"))
        net.settle()
        key = domain_key("mydomain")
        holders = [p for p in net.peers.values()
                   if p.is_responsible_for(key)]
        assert holders
        assert any(
            isinstance(v, ConnectivityRecord)
            for p in holders for v in p.store.get(key.bits, ())
        )


class TestSearch:
    def test_search_routes_by_most_specific_constant(self, fig2_network):
        net, _embl, _emp = fig2_network
        out = net.search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))",
            strategy="local")
        assert {str(r[0]) for r in out.results} == {
            "<EMBL:A78712>", "<EMBL:A78767>"}

    def test_subject_lookup(self, fig2_network):
        net, _embl, _emp = fig2_network
        out = net.search_for(
            "SearchFor(o? : (EMBL:A78712, EMBL#Organism, o?))",
            strategy="local")
        assert out.sorted_results() == [(Literal("Aspergillus niger"),)]

    def test_exact_object_constraint(self, fig2_network):
        net, _embl, _emp = fig2_network
        out = net.search_for(
            'SearchFor(x? : (x?, EMBL#Organism, "Aspergillus niger"))',
            strategy="local")
        assert out.sorted_results() == [(URI("EMBL:A78712"),)]

    def test_unroutable_query_raises_early(self, small_network):
        net = small_network
        from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
        query = ConjunctiveQuery(
            [TriplePattern(Variable("x"), Variable("p"), Variable("o"))],
            [Variable("x")])
        with pytest.raises(ValueError):
            net.search_for(query)

    def test_conjunctive_query_joins_on_shared_variable(self, small_network):
        net = small_network
        net.insert_triples([
            Triple(URI("e1"), URI("S#org"), Literal("Aspergillus")),
            Triple(URI("e1"), URI("S#len"), Literal("120")),
            Triple(URI("e2"), URI("S#org"), Literal("Aspergillus")),
        ])
        net.settle()
        out = net.search_for(
            "SearchFor(x?, y? : (x?, S#org, %Asp%) AND (x?, S#len, y?))",
            strategy="local")
        assert out.sorted_results() == [(URI("e1"), Literal("120"))]

    def test_query_outcome_metadata(self, fig2_network):
        net, _embl, _emp = fig2_network
        out = net.search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))",
            strategy="local")
        assert out.strategy == "local"
        assert out.latency >= 0.0
        assert out.complete
        assert out.result_count == 2


class TestGuidMinting:
    def test_guid_embeds_peer_path(self, small_network):
        net = small_network
        peer = net.peer(net.peer_ids()[0])
        guid = peer.mint_guid("my-schema")
        path, _ = split_guid(guid)
        assert path == peer.path
