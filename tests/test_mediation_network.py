"""End-to-end tests: reformulation strategies, Figure 2, chains."""

import pytest

from repro.mediation.network import GridVineNetwork
from repro.rdf.parser import parse_search_for
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.latency import LogNormalWANLatency

FIG2_QUERY = "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"


class TestFigure2:
    """The paper's Figure 2: reformulation across EMBL -> EMP."""

    def test_without_mapping_only_local_schema_answers(self, fig2_network):
        net, _embl, _emp = fig2_network
        for strategy in ("local", "iterative", "recursive"):
            out = net.search_for(FIG2_QUERY, strategy=strategy)
            assert {str(r[0]) for r in out.results} == {
                "<EMBL:A78712>", "<EMBL:A78767>"}, strategy

    @pytest.mark.parametrize("strategy", ["iterative", "recursive"])
    def test_with_mapping_union_of_both_schemas(self, fig2_network,
                                                strategy):
        net, embl, emp = fig2_network
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        out = net.search_for(FIG2_QUERY, strategy=strategy)
        assert {str(r[0]) for r in out.results} == {
            "<EMBL:A78712>", "<EMBL:A78767>", "<EMP:NEN94295-05>"}
        assert out.complete
        assert out.reformulations_explored == 1

    def test_results_attributed_per_reformulation(self, fig2_network):
        net, embl, emp = fig2_network
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        out = net.search_for(FIG2_QUERY, strategy="iterative")
        emp_query = parse_search_for(
            "SearchFor(x? : (x?, EMP#SystematicName, %Aspergillus%))")
        assert out.results_by_query[emp_query] == {
            (URI("EMP:NEN94295-05"),)}

    def test_deprecated_mapping_ignored_by_reformulation(self,
                                                         fig2_network):
        net, embl, emp = fig2_network
        mapping = net.create_mapping(embl, emp,
                                     [("Organism", "SystematicName")])
        net.settle()
        net.deprecate_mapping(mapping)
        net.settle()
        out = net.search_for(FIG2_QUERY, strategy="iterative")
        assert len(out.results) == 2  # EMP result no longer reachable


def build_chain_network(length, seed=3, num_peers=32, latency=None):
    """S0 -> S1 -> ... -> S_length, one record and one mapping per hop."""
    net = GridVineNetwork.build(num_peers=num_peers, seed=seed,
                                latency=latency)
    schemas = []
    for i in range(length + 1):
        schema = Schema(f"S{i}", [f"org{i}"], domain="chain")
        schemas.append(schema)
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI(f"S{i}:e"), URI(f"S{i}#org{i}"),
                   Literal("Aspergillus")),
        ])
    for i in range(length):
        net.create_mapping(schemas[i], schemas[i + 1],
                           [(f"org{i}", f"org{i + 1}")])
    net.settle()
    return net


class TestMappingChains:
    @pytest.mark.parametrize("strategy", ["iterative", "recursive"])
    def test_full_chain_reached(self, strategy):
        net = build_chain_network(4)
        out = net.search_for(
            "SearchFor(x? : (x?, S0#org0, %Asp%))",
            strategy=strategy, max_hops=6)
        assert out.result_count == 5
        assert out.reformulations_explored == 4

    @pytest.mark.parametrize("strategy", ["iterative", "recursive"])
    def test_max_hops_truncates_chain(self, strategy):
        net = build_chain_network(4)
        out = net.search_for(
            "SearchFor(x? : (x?, S0#org0, %Asp%))",
            strategy=strategy, max_hops=2)
        assert out.result_count == 3  # S0 + 2 hops

    def test_strategies_agree_under_wan_latency(self):
        net = build_chain_network(3, latency=LogNormalWANLatency(),
                                  num_peers=48)
        results = {}
        for strategy in ("iterative", "recursive"):
            out = net.search_for("SearchFor(x? : (x?, S0#org0, %Asp%))",
                                 strategy=strategy, max_hops=5)
            results[strategy] = out.results
            assert out.complete
        assert results["iterative"] == results["recursive"]

    def test_cyclic_mappings_terminate(self):
        net = GridVineNetwork.build(num_peers=16, seed=5)
        a = Schema("A", ["x"], domain="c")
        b = Schema("B", ["y"], domain="c")
        net.insert_schema(a)
        net.insert_schema(b)
        net.insert_triples([
            Triple(URI("A:1"), URI("A#x"), Literal("v")),
            Triple(URI("B:1"), URI("B#y"), Literal("v")),
        ])
        net.create_mapping(a, b, [("x", "y")])
        net.create_mapping(b, a, [("y", "x")])
        net.settle()
        for strategy in ("iterative", "recursive"):
            out = net.search_for('SearchFor(x? : (x?, A#x, "v"))',
                                 strategy=strategy, max_hops=10)
            assert out.result_count == 2
            assert out.complete

    def test_branching_mappings_all_explored(self):
        net = GridVineNetwork.build(num_peers=24, seed=6)
        root = Schema("Root", ["attr"], domain="tree")
        net.insert_schema(root)
        net.insert_triples([
            Triple(URI("Root:1"), URI("Root#attr"), Literal("hit"))])
        for i in range(3):
            leaf = Schema(f"Leaf{i}", ["field"], domain="tree")
            net.insert_schema(leaf)
            net.insert_triples([
                Triple(URI(f"Leaf{i}:1"), URI(f"Leaf{i}#field"),
                       Literal("hit"))])
            net.create_mapping(root, leaf, [("attr", "field")])
        net.settle()
        out = net.search_for('SearchFor(x? : (x?, Root#attr, "hit"))',
                             strategy="recursive")
        assert out.result_count == 4
        assert out.reformulations_explored == 3


class TestMappingGraphReconstruction:
    def test_graph_matches_inserted_mappings(self, fig2_network):
        net, embl, emp = fig2_network
        m = net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        graph = net.mapping_graph("bio")
        assert [x.mapping_id for x in graph.mappings()] == [m.mapping_id]
        assert set(graph.schemas()) == {"EMBL", "EMP"}

    def test_indicator_through_overlay(self, fig2_network):
        net, embl, emp = fig2_network
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        # one directed edge between two schemas: fragmented
        assert net.connectivity_indicator("bio") == pytest.approx(-0.5)

    def test_bidirectional_mapping_reaches_criticality(self, fig2_network):
        net, embl, emp = fig2_network
        origin = net.peer(net.peer_ids()[0])
        mapping = net.create_mapping(embl, emp,
                                     [("Organism", "SystematicName")])
        net.loop.run_until_complete(
            origin.insert_mapping(mapping.reversed()))
        net.settle()
        # A <-> B: j=k=1 for both, ci = 0 (criticality)
        assert net.connectivity_indicator("bio") == pytest.approx(0.0)


class TestReplicationAndScale:
    def test_fig2_with_replication(self):
        net = GridVineNetwork.build(num_peers=30, seed=8, replication=3)
        embl = Schema("EMBL", ["Organism"], domain="bio")
        emp = Schema("EMP", ["SystematicName"], domain="bio")
        net.insert_schema(embl)
        net.insert_schema(emp)
        net.insert_triples([
            Triple(URI("EMBL:A1"), URI("EMBL#Organism"),
                   Literal("Aspergillus niger")),
            Triple(URI("EMP:B1"), URI("EMP#SystematicName"),
                   Literal("Aspergillus oryzae")),
        ])
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        out = net.search_for(FIG2_QUERY, strategy="recursive")
        assert out.result_count == 2

    def test_total_triples_stored_counts_copies(self, fig2_network):
        net, _embl, _emp = fig2_network
        # 4 triples x 3 keys, replication=1; copies may collapse when
        # two keys of one triple land on the same peer (db is a set).
        assert 4 <= net.total_triples_stored() <= 12
