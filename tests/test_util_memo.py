"""Memoized key hashing: identical results, counted cache hits.

The satellite requirement is a cache-hit-counter test *proving no
behavior change*: every memoized function must return values equal to
a fresh (cold-cache) computation, while the counters prove the cache
actually served hits on the repeat calls.
"""

import pytest

from repro.util.hashing import (
    HASH_CACHE,
    PREFIX_INTERVAL_CACHE,
    clear_hash_caches,
    hash_cache_stats,
    order_preserving_hash,
    prefix_interval,
)
from repro.util.keys import _COVER_CACHE, Key, MemoCache, covering_prefixes


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_hash_caches()
    _COVER_CACHE.clear()
    yield
    clear_hash_caches()
    _COVER_CACHE.clear()


class TestMemoCache:
    def test_hit_miss_counters(self):
        cache = MemoCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {"hits": 1, "misses": 1,
                                 "evictions": 0, "size": 1}

    def test_fifo_eviction_is_deterministic(self):
        cache = MemoCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a", the oldest insertion
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_clear_resets_counters(self):
        cache = MemoCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0,
                                 "evictions": 0, "size": 0}

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            MemoCache(maxsize=0)


class TestOrderPreservingHashMemo:
    VALUES = ["EMBL#Organism", "EMP#SystematicName", "Aspergillus 9",
              "SwissProt:P10001", "", " ", "~~~", "a" * 64]

    def test_hits_counted_and_results_identical(self):
        cold = [order_preserving_hash(v) for v in self.VALUES]
        before = HASH_CACHE.stats()
        assert before["hits"] == 0
        assert before["misses"] == len(self.VALUES)
        warm = [order_preserving_hash(v) for v in self.VALUES]
        after = HASH_CACHE.stats()
        assert after["hits"] == len(self.VALUES)
        assert warm == cold
        # The cached instance itself is returned (Key is immutable).
        assert all(a is b for a, b in zip(cold, warm))

    def test_distinct_bits_are_distinct_entries(self):
        a = order_preserving_hash("Asp", bits=16)
        b = order_preserving_hash("Asp", bits=32)
        assert len(a) == 16 and len(b) == 32
        assert HASH_CACHE.stats()["misses"] == 2

    def test_results_match_uncached_computation(self):
        # Hash through a throwaway run, clear, re-hash: equality across
        # a cold boundary means the cache stores exact results.
        first = {v: order_preserving_hash(v).bits for v in self.VALUES}
        clear_hash_caches()
        second = {v: order_preserving_hash(v).bits for v in self.VALUES}
        assert first == second

    def test_monotonicity_survives_memoization(self):
        values = sorted(self.VALUES)
        keys = [order_preserving_hash(v) for v in values]  # cold
        keys2 = [order_preserving_hash(v) for v in values]  # warm
        for seq in (keys, keys2):
            assert all(x <= y for x, y in zip(seq, seq[1:]))


class TestPrefixIntervalMemo:
    def test_hits_counted_and_results_identical(self):
        cold = prefix_interval("Asp")
        warm = prefix_interval("Asp")
        assert cold == warm
        stats = hash_cache_stats()["prefix_interval"]
        assert stats == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}


class TestCoveringPrefixesMemo:
    def test_hits_counted_and_results_identical(self):
        low, high = Key("010"), Key("101")
        cold = covering_prefixes(low, high)
        hit = covering_prefixes(low, high)
        assert cold == hit
        assert _COVER_CACHE.hits == 1

    def test_returned_copy_is_mutation_safe(self):
        low, high = Key("010"), Key("101")
        first = covering_prefixes(low, high)
        first.append(Key("111"))  # caller mutates its copy
        second = covering_prefixes(low, high)
        assert Key("111") not in second

    def test_max_length_distinguishes_entries(self):
        low, high = Key("0100"), Key("1011")
        full = covering_prefixes(low, high)
        capped = covering_prefixes(low, high, max_length=1)
        assert full != capped
        assert covering_prefixes(low, high, max_length=1) == capped
