"""Tests for the cost-based query optimizer.

Unit level: join order follows estimated cardinalities (and flips when
they flip), everything degrades to the static ``selectivity_rank``
behaviour with no statistics, strategy choice reacts to the mapping
knowledge in the digests.  Integration level: ``strategy="auto"`` on a
live deployment returns bit-identical results to the static iterative
reference while spending fewer messages.
"""

import random

import pytest

from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
from repro.exec.operators import BoundJoin, selectivity_rank
from repro.mediation.network import GridVineNetwork
from repro.mediation.peer import GridVinePeer
from repro.pgrid.maintenance import MaintenanceProcess
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import URI, Variable
from repro.reformulation.planner import (
    Reformulation,
    prune_reformulations,
)
from repro.schema.model import Schema
from repro.stats.synopsis import MappingEdge, PeerSynopsis, PredicateDigest
from repro.util.keys import Key


def _peer():
    return GridVinePeer("origin", Key("0101"))


def _digest(peer_id, counts, mappings=(), version=1, path=""):
    """A synthetic digest: ``counts`` maps predicate -> triple count.

    ``path=""`` leaves key-space coverage unknown; pass e.g. ``"1"``
    (the complement of the test peer's ``"0101"``) to make the
    known digests cover the whole space, which is what authorizes
    absence-means-empty estimates.
    """
    return PeerSynopsis(
        peer_id=peer_id, version=version,
        triples=sum(counts.values()),
        predicates=tuple(
            PredicateDigest(predicate=p, triples=n,
                            distinct_subjects=max(1, n // 2),
                            distinct_objects=max(1, n // 2))
            for p, n in sorted(counts.items())
        ),
        mappings=tuple(mappings),
        path=path,
    )


def _covering_peer(peer):
    """Register digests whose paths + the peer's own cover the space."""
    # peer path "0101": digests at "1", "00", "011", "0100" complete
    # the cover together with the peer's own "0101".
    for i, path in enumerate(("1", "00", "011", "0100")):
        peer.synopses.register(_digest(f"cover{i}", {}, path=path,
                                       version=1))
    return peer


X = Variable("x")
Y = Variable("y")
WIDE = TriplePattern(X, URI("A#wide"), Variable("w"))
NARROW = TriplePattern(X, URI("A#narrow"), Y)
TWO_PATTERN = ConjunctiveQuery([WIDE, NARROW], [X])


class TestScanOrder:
    def test_order_follows_estimated_cardinality(self):
        peer = _peer()
        peer.synopses.register(_digest("n1", {"A#wide": 100,
                                              "A#narrow": 2}))
        assert peer.optimizer.scan_order(TWO_PATTERN) == [NARROW, WIDE]

    def test_order_flips_when_cardinalities_flip(self):
        peer = _peer()
        peer.synopses.register(_digest("n1", {"A#wide": 2,
                                              "A#narrow": 100}))
        assert peer.optimizer.scan_order(TWO_PATTERN) == [WIDE, NARROW]

    def test_no_statistics_falls_back_to_static_rank(self):
        peer = _peer()
        assert peer.optimizer.scan_order(TWO_PATTERN) is None
        # and the bound join then uses the historical static order
        join = BoundJoin(TWO_PATTERN, peer.bound_join_fanout_cap)
        assert join.ordered == sorted(TWO_PATTERN.patterns,
                                      key=selectivity_rank)

    def test_unestimable_predicates_sort_last_under_partial_coverage(self):
        peer = _peer()
        peer.synopses.register(_digest("n1", {"A#wide": 5}))
        mystery = TriplePattern(X, URI("Z#mystery"), Y)
        query = ConjunctiveQuery([mystery, WIDE], [X])
        # Partial coverage: Z#mystery could live on an unseen peer, so
        # it is unestimable (not zero) and sorts after known extents.
        assert not peer.optimizer.estimator.full_coverage()
        assert peer.optimizer.scan_order(query) == [WIDE, mystery]

    def test_absent_predicates_sort_first_under_full_coverage(self):
        peer = _covering_peer(_peer())
        peer.synopses.register(_digest("n1", {"A#wide": 5}))
        mystery = TriplePattern(X, URI("Z#mystery"), Y)
        query = ConjunctiveQuery([mystery, WIDE], [X])
        # Full coverage: every responsible peer is known and none
        # reports Z#mystery, so its extent is authoritatively empty.
        assert peer.optimizer.estimator.full_coverage()
        assert peer.optimizer.scan_order(query) == [mystery, WIDE]


class TestStrategyChoice:
    def test_fallback_without_statistics(self):
        decision = _peer().optimizer.choose_strategy(TWO_PATTERN,
                                                     max_hops=5)
        assert decision.fallback
        assert decision.strategy == "iterative"

    def test_local_when_no_mapping_edges(self):
        peer = _covering_peer(_peer())
        peer.synopses.register(_digest("n1", {"A#wide": 10,
                                              "A#narrow": 5}))
        decision = peer.optimizer.choose_strategy(TWO_PATTERN,
                                                  max_hops=5)
        assert not decision.fallback
        assert decision.strategy == "local"

    def test_local_when_all_targets_empty(self):
        peer = _covering_peer(_peer())
        peer.synopses.register(_digest(
            "n1", {"A#wide": 10, "A#narrow": 5},
            mappings=(MappingEdge("A", "Ghost", 0.9),),
        ))
        decision = peer.optimizer.choose_strategy(TWO_PATTERN,
                                                  max_hops=5)
        assert decision.strategy == "local"
        assert "no data" in decision.reason

    def test_partial_coverage_never_skips_reformulation(self):
        """With digests from only part of the key space, an unseen
        peer could hold the mapping that makes reformulation
        worthwhile — auto must not degrade to local."""
        peer = _peer()
        peer.synopses.register(_digest("n1", {"A#wide": 10,
                                              "A#narrow": 5}))
        decision = peer.optimizer.choose_strategy(TWO_PATTERN,
                                                  max_hops=5)
        assert decision.strategy == "iterative"
        assert "coverage" in decision.reason

    def test_partial_coverage_keeps_unknown_reformulations(self):
        peer = _peer()
        peer.synopses.register(_digest("n1", {"A#wide": 10}))
        ghost_query = ConjunctiveQuery(
            [TriplePattern(X, URI("Ghost#wide"), Y)], [X])
        # Ghost#wide is absent from the digests but coverage is
        # partial: expected yield must be unknown (kept), not zero.
        assert peer.optimizer.expected_yield(ghost_query, 0.9) is None
        assert peer.optimizer.keep_reformulation(ghost_query, 0.9)

    def test_reformulating_strategy_when_targets_hold_data(self):
        peer = _covering_peer(_peer())
        peer.synopses.register(_digest(
            "n1", {"A#wide": 10, "A#narrow": 5, "B#attr": 40},
            mappings=(MappingEdge("A", "B", 1.0),),
        ))
        decision = peer.optimizer.choose_strategy(TWO_PATTERN,
                                                  max_hops=5)
        assert decision.strategy in ("iterative", "recursive")
        assert set(decision.candidate_costs) == {"local", "iterative",
                                                 "recursive"}

    def test_dead_fanout_prefers_prunable_iterative(self):
        peer = _covering_peer(_peer())
        ghosts = tuple(MappingEdge("A", f"Ghost{i}", 0.9)
                       for i in range(10))
        peer.synopses.register(_digest(
            "n1", {"A#wide": 10, "A#narrow": 5, "B#attr": 40},
            mappings=ghosts + (MappingEdge("A", "B", 1.0),),
        ))
        decision = peer.optimizer.choose_strategy(TWO_PATTERN,
                                                  max_hops=5)
        # recursive cannot prune the ten dead edges; iterative can
        assert decision.strategy == "iterative"
        assert (decision.candidate_costs["recursive"]
                > decision.candidate_costs["iterative"])


class TestPrunePlans:
    def _plan(self):
        translated = ConjunctiveQuery(
            [TriplePattern(X, URI("Ghost#wide"), Variable("w"))], [X])
        from repro.mapping.model import (
            MappingKind,
            PredicateCorrespondence,
            SchemaMapping,
        )
        mapping = SchemaMapping(
            "m1", "A", "Ghost",
            [PredicateCorrespondence(URI("A#wide"), URI("Ghost#wide"),
                                     kind=MappingKind.EQUIVALENCE)],
            confidence=0.9,
        )
        original_query = ConjunctiveQuery([WIDE], [X])
        return [Reformulation(original_query, ()),
                Reformulation(translated, (mapping,))]

    def test_zero_yield_reformulations_pruned(self):
        plan = self._plan()
        kept, pruned = prune_reformulations(
            plan, lambda r: 0.0 if r.hops else None)
        assert kept == [plan[0]]
        assert pruned == 1

    def test_unknown_yield_kept(self):
        plan = self._plan()
        kept, pruned = prune_reformulations(plan, lambda r: None)
        assert kept == plan
        assert pruned == 0

    def test_original_never_pruned(self):
        plan = self._plan()
        kept, _pruned = prune_reformulations(plan, lambda r: 0.0)
        assert plan[0] in kept

    def test_optimizer_yield_uses_confidence_and_cardinality(self):
        peer = _peer()
        peer.synopses.register(_digest("n1", {"A#wide": 10,
                                              "Ghost#wide": 0}))
        plan = self._plan()
        yields = [peer.optimizer.reformulation_yield(r) for r in plan]
        assert yields[0] == pytest.approx(10.0)  # 1.0 conf x 10 rows
        assert yields[1] == 0.0                  # empty target schema


def _deployment(seed=11):
    """A small corpus: a mapped pair, a dead-end ghost, an unmapped
    schema — warm statistics via maintenance gossip."""
    dataset = BioDatasetGenerator(num_schemas=4, num_entities=36,
                                  entities_per_schema=9,
                                  seed=seed).generate()
    net = GridVineNetwork.build(num_peers=24, seed=seed, replication=2)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    names = [s.name for s in dataset.schemas]
    net.insert_mapping(dataset.ground_truth_mapping(names[0], names[1]),
                       bidirectional=True)
    ghost = Schema("Ghost", dataset.schemas[0].attributes,
                   domain=dataset.domain)
    net.insert_schema(ghost)
    net.create_mapping(dataset.schemas[0], ghost,
                       [(a, a) for a in dataset.schemas[0].attributes],
                       confidence=0.8)
    net.settle()
    maintenance = MaintenanceProcess(net.peers, interval=20.0,
                                     rng=random.Random(5))
    maintenance.start()
    net.loop.run_until(net.loop.now + 500)
    maintenance.stop()
    net.loop.run_until(net.loop.now + 40)
    return net, dataset


class TestAutoStrategyEndToEnd:
    def test_auto_matches_iterative_results_with_fewer_messages(self):
        net, dataset = _deployment()
        origin = net.peer_ids()[0]
        workload = QueryWorkloadGenerator(dataset, seed=3)
        mapped = workload.concept_query(dataset.schemas[0].name,
                                        "organism", "a")
        unmapped = workload.concept_query(dataset.schemas[3].name,
                                          "organism", "a")
        totals = {"auto": 0, "iterative": 0}
        for query in (mapped, unmapped):
            reference = net.search_for(query, strategy="iterative",
                                       max_hops=8, origin=origin)
            auto = net.search_for(query, strategy="auto", max_hops=8,
                                  origin=origin)
            assert auto.results == reference.results
            assert auto.decision is not None
            assert not auto.decision.fallback
            totals["auto"] += auto.messages
            totals["iterative"] += reference.messages
        assert totals["auto"] < totals["iterative"]

    def test_auto_picks_local_for_unmapped_schema(self):
        net, dataset = _deployment()
        origin = net.peer_ids()[0]
        workload = QueryWorkloadGenerator(dataset, seed=3)
        unmapped = workload.concept_query(dataset.schemas[3].name,
                                          "organism", "a")
        outcome = net.search_for(unmapped, strategy="auto", max_hops=8,
                                 origin=origin)
        assert outcome.decision.strategy == "local"

    def test_optimizing_engine_prunes_dead_reformulations(self):
        net, dataset = _deployment()
        origin = net.peer_ids()[0]
        workload = QueryWorkloadGenerator(dataset, seed=3)
        mapped = workload.concept_query(dataset.schemas[0].name,
                                        "organism", "a")
        baseline = net.create_engine(domain=dataset.domain, max_hops=8)
        optimized = net.create_engine(domain=dataset.domain, max_hops=8,
                                      optimize=True)
        reference = baseline.search_for(mapped, origin=origin)
        outcome = optimized.search_for(mapped, origin=origin)
        assert outcome.results == reference.results
        assert optimized.stats.reformulations_pruned >= 1
        assert outcome.decision is not None
        assert outcome.decision.reformulations_pruned >= 1
        assert outcome.messages < reference.messages
