"""Stateful property test: the overlay against a model key-value store.

A hypothesis rule-based state machine drives a live P-Grid overlay
through arbitrary interleavings of inserts, removes, retrieves, range
queries, peer joins and graceful leaves, checking every observable
result against a plain in-memory model.  This is the strongest single
correctness artifact for the overlay: any divergence between protocol
and model (lost values, duplicated range answers, stale replica
hand-offs) fails the machine with a minimized command sequence.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import settings

from repro.pgrid.membership import MembershipError
from repro.pgrid.overlay import PGridOverlay
from repro.util.hashing import order_preserving_hash
from repro.util.keys import Key

#: a small closed key vocabulary so removes and re-inserts collide
WORDS = [f"word-{i:02d}" for i in range(12)]
VALUES = list(range(6))


class OverlayMachine(RuleBasedStateMachine):
    """Protocol-vs-model equivalence under arbitrary command mixes."""

    def __init__(self):
        super().__init__()
        self.overlay = None
        self.model: dict[str, list] = {}
        self.join_counter = 0

    @initialize(num_peers=st.integers(3, 10),
                replication=st.integers(1, 3),
                seed=st.integers(0, 10_000))
    def setup(self, num_peers, replication, seed):
        import random as _random
        from repro.pgrid.maintenance import MaintenanceProcess
        self.overlay = PGridOverlay.build(
            num_peers, replication=replication, seed=seed)
        self.model = {}
        # repair keeps routing tables usable across joins and leaves
        self.maintenance = MaintenanceProcess(
            self.overlay.peers, interval=8.0, probe_timeout=2.0,
            rng=_random.Random(seed))
        self.maintenance.start()

    def _let_repair_run(self, duration=60.0):
        self.overlay.loop.run_until(self.overlay.loop.now + duration)

    # -- helpers ---------------------------------------------------------

    def _origin(self):
        return self.overlay.peer_ids()[0]

    def _key(self, word):
        return order_preserving_hash(word)

    # -- rules -----------------------------------------------------------

    @rule(word=st.sampled_from(WORDS), value=st.sampled_from(VALUES))
    def insert(self, word, value):
        result = self.overlay.update_sync(self._origin(),
                                          self._key(word), value)
        assert result.success
        self.model.setdefault(word, []).append(value)
        # a bounded step lets replication land (run_until_idle would
        # never return: maintenance keeps the queue populated forever)
        self._let_repair_run(5.0)

    @rule(word=st.sampled_from(WORDS), value=st.sampled_from(VALUES))
    def remove(self, word, value):
        result = self.overlay.update_sync(
            self._origin(), self._key(word), value, action="remove")
        assert result.success
        bucket = self.model.get(word)
        if bucket is not None:
            self.model[word] = [v for v in bucket if v != value]
            if not self.model[word]:
                del self.model[word]
        self._let_repair_run(5.0)

    @rule(word=st.sampled_from(WORDS))
    def retrieve(self, word):
        result = self.overlay.retrieve_sync(self._origin(),
                                            self._key(word))
        assert result.success
        assert sorted(result.values) == sorted(self.model.get(word, []))

    @rule()
    def range_everything(self):
        origin = self.overlay.peer(self._origin())
        result = self.overlay.loop.run_until_complete(
            origin.range_query(Key("")))
        assert result.success
        expected = sorted(
            v for values in self.model.values() for v in values)
        assert sorted(result.values) == expected

    @rule(seed=st.integers(0, 100))
    def join(self, seed):
        self.join_counter += 1
        self.overlay.join(f"joiner-{self.join_counter}", seed=seed)
        self._let_repair_run(30.0)

    @precondition(lambda self: self.overlay is not None
                  and len(self.overlay.peers) > 3)
    @rule()
    def leave(self):
        # leave any peer that has a replica and is not the test origin
        for node_id in self.overlay.peer_ids()[1:]:
            peer = self.overlay.peer(node_id)
            if peer.replicas:
                try:
                    self.overlay.leave(node_id)
                except MembershipError:
                    continue
                self._let_repair_run()
                return

    def teardown(self):
        if getattr(self, "maintenance", None) is not None:
            self.maintenance.stop()
        super().teardown()

    # -- invariants --------------------------------------------------------

    @invariant()
    def key_space_remains_covered(self):
        if self.overlay is None:
            return
        paths = {peer.path for peer in self.overlay.peers.values()}
        total = sum(2.0 ** -len(p) for p in paths)
        assert abs(total - 1.0) < 1e-9

    @invariant()
    def replica_lists_are_symmetric(self):
        if self.overlay is None:
            return
        for node_id, peer in self.overlay.peers.items():
            for replica in peer.replicas:
                other = self.overlay.peers.get(replica)
                assert other is not None
                assert node_id in other.replicas
                assert other.path == peer.path


OverlayMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None)
TestOverlayStateful = OverlayMachine.TestCase
