"""Regression pin: OperatorStats counters on the E13 workload.

The E13 corpus (a chain of four mapped schemas, engine execution with
wave-staged shared scans) exercises every operator of the columnar
runtime.  This test pins the *exact* per-operator counter snapshots —
rows in/out, batches, fetches issued/skipped, rows dropped — for the
unlimited query and the ``limit=6`` variant.  The counters are the
raw material of the fetches-saved accounting (E15) and the perf-gate
baselines; any change to operator wiring, batch granularity or
cancellation timing shows up here as a readable diff instead of a
mysterious benchmark drift.
"""

from repro import GridVineNetwork, Literal, Schema, Triple, URI

QUERY = "SearchFor(x? : (x?, S0#org, %Aspergillus%))"


def build_corpus(num_schemas=4, entries_per_schema=12, seed=29):
    """The E13 bench corpus (benchmarks/bench_e13_plan_cache.py)."""
    net = GridVineNetwork.build(num_peers=48, seed=seed)
    schemas = [Schema(f"S{i}", ["org", "len"], domain="e13")
               for i in range(num_schemas)]
    for schema in schemas:
        net.insert_schema(schema)
    triples = []
    for i, schema in enumerate(schemas):
        for j in range(entries_per_schema):
            organism = "Aspergillus" if j % 3 == 0 else "Yeast"
            subject = URI(f"{schema.name}:e{j}")
            triples.append(Triple(subject, URI(f"{schema.name}#org"),
                                  Literal(f"{organism}-{i}-{j}")))
            triples.append(Triple(subject, URI(f"{schema.name}#len"),
                                  Literal(str(100 + j))))
    net.insert_triples(triples)
    for a, b in zip(schemas, schemas[1:]):
        net.create_mapping(a, b, [("org", "org"), ("len", "len")])
    net.settle()
    return net


def snap(name, rows_in, rows_out, batches_out, fetches_issued,
         fetches_skipped, rows_dropped):
    return {
        "name": name,
        "rows_in": rows_in,
        "rows_out": rows_out,
        "batches_out": batches_out,
        "fetches_issued": fetches_issued,
        "fetches_skipped": fetches_skipped,
        "rows_dropped": rows_dropped,
    }


def _per_reformulation_tail(joins):
    """hash-join -> project -> dedup triples, one per reformulation."""
    out = []
    for rows, batches in joins:
        out.append(snap("hash-join", rows, rows, batches, 0, 0, 0))
        out.append(snap("project", rows, rows, batches, 0, 0, 0))
        out.append(snap("dedup", rows, rows, batches, 0, 0, 0))
    return out


def test_unlimited_operator_stats_pinned():
    engine = build_corpus().create_engine(domain="e13", max_hops=8)
    outcome = engine.search_for(QUERY)
    assert outcome.result_count == 16
    assert outcome.messages == 21
    assert outcome.operator_stats == [
        snap('scan(_c0?, <S0#org>, "%Aspergillus%")', 0, 4, 1, 1, 0, 0),
        snap('scan(_c0?, <S1#org>, "%Aspergillus%")', 0, 4, 1, 1, 0, 0),
        snap('scan(_c0?, <S2#org>, "%Aspergillus%")', 0, 4, 1, 1, 0, 0),
        snap('scan(_c0?, <S3#org>, "%Aspergillus%")', 0, 4, 1, 1, 0, 0),
        snap("union[q0]", 16, 16, 4, 0, 0, 0),
        snap("limit", 16, 16, 4, 0, 0, 0),
        snap("collect", 16, 0, 0, 0, 0, 0),
    ] + _per_reformulation_tail([(4, 1)] * 4)


def test_limited_operator_stats_pinned():
    engine = build_corpus().create_engine(domain="e13", max_hops=8)
    outcome = engine.search_for(QUERY, limit=6)
    assert outcome.result_count == 6
    assert outcome.messages == 11
    assert outcome.fetches_skipped == 2
    # The third wave's scans never ran: the satisfied limit cancelled
    # them, and the cancellation is visible in fetches_skipped while
    # the already-fetched waves keep their exact unlimited counters.
    assert outcome.operator_stats == [
        snap('scan(_c0?, <S0#org>, "%Aspergillus%")', 0, 4, 1, 1, 0, 0),
        snap('scan(_c0?, <S1#org>, "%Aspergillus%")', 0, 4, 1, 1, 0, 0),
        snap('scan(_c0?, <S2#org>, "%Aspergillus%")', 0, 0, 0, 0, 1, 0),
        snap('scan(_c0?, <S3#org>, "%Aspergillus%")', 0, 0, 0, 0, 1, 0),
        snap("union[q0]", 8, 8, 4, 0, 0, 0),
        snap("limit[6]", 8, 6, 2, 0, 0, 2),
        snap("collect", 6, 0, 0, 0, 0, 0),
    ] + _per_reformulation_tail([(4, 1), (4, 1), (0, 1), (0, 1)])
