"""Failure-injection tests for the mediation layer's query paths."""

import pytest

from repro.mediation.keys import schema_key, term_key
from repro.mediation.network import GridVineNetwork
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema


# NOTE on key geography: the order-preserving hash clusters related
# names — a schema's record and all of its predicate data share the
# schema-name prefix and therefore co-locate on the same peer(s) at
# laptop trie depths.  The two test schemas are named "Alpha" and
# "Zulu" so that *their* key spaces separate at the first trie level,
# letting the tests kill one schema's world while the other survives.
def deploy(num_peers=24, seed=61, **kwargs):
    kwargs.setdefault("query_timeout", 30.0)
    kwargs.setdefault("timeout", 4.0)
    kwargs.setdefault("max_retries", 1)
    net = GridVineNetwork.build(num_peers=num_peers, seed=seed, **kwargs)
    alpha = Schema("Alpha", ["organism"], domain="f")
    zulu = Schema("Zulu", ["species"], domain="f")
    net.insert_schema(alpha)
    net.insert_schema(zulu)
    net.insert_triples([
        Triple(URI("Alpha:1"), URI("Alpha#organism"),
               Literal("Aspergillus niger")),
        Triple(URI("Zulu:1"), URI("Zulu#species"),
               Literal("Aspergillus oryzae")),
    ])
    net.create_mapping(alpha, zulu, [("organism", "species")])
    net.settle()
    return net


QUERY = "SearchFor(x? : (x?, Alpha#organism, %Aspergillus%))"


def kill_owners(net, key, keep_origin):
    killed = []
    for node_id, peer in net.peers.items():
        if peer.is_responsible_for(key) and node_id != keep_origin:
            net.network.set_online(node_id, False)
            killed.append(node_id)
    return killed


class TestRecursiveTimeout:
    def test_dead_source_schema_peer_times_out_incomplete(self):
        net = deploy()
        origin = net.peer_ids()[0]
        killed = kill_owners(net, schema_key("Alpha"), origin)
        if not killed:
            pytest.skip("origin owns the schema key space")
        out = net.search_for(QUERY, strategy="recursive", origin=origin)
        assert not out.complete  # timeout admitted, not a hang
        assert out.latency == pytest.approx(30.0, rel=0.01)

    def test_dead_target_schema_world_gives_partial_results(self):
        net = deploy()
        origin = net.peer_ids()[0]
        killed = kill_owners(net, schema_key("Zulu"), origin)
        alpha_alive = all(
            net.network.is_online(n)
            for n in net.peer_ids()
            if net.peer(n).is_responsible_for(schema_key("Alpha")))
        if not killed or not alpha_alive:
            pytest.skip("topology degenerate for this scenario")
        out = net.search_for(QUERY, strategy="recursive", origin=origin)
        # the Alpha side still answers; the Zulu reformulation is lost
        assert {str(r[0]) for r in out.results} == {"<Alpha:1>"}
        assert not out.complete


class TestIterativeDegradation:
    def test_dead_data_peer_yields_empty_pattern_results(self):
        net = deploy()
        origin = net.peer_ids()[0]
        key = term_key(URI("Alpha#organism"))
        killed = kill_owners(net, key, origin)
        if not killed:
            pytest.skip("origin owns the data key space")
        out = net.search_for(QUERY, strategy="iterative", origin=origin)
        # failed pattern lookups resolve to empty sets, not hangs
        assert all("Alpha" not in str(r[0]) for r in out.results)

    def test_iterative_partial_when_target_world_dead(self):
        net = deploy()
        origin = net.peer_ids()[0]
        killed = kill_owners(net, schema_key("Zulu"), origin)
        if not killed:
            pytest.skip("origin owns the schema key space")
        out = net.search_for(QUERY, strategy="iterative", origin=origin)
        # Alpha's mappings fetched fine, so the Zulu reformulation was
        # explored — but its data lookup failed to an empty set; the
        # Alpha side still answers and the future resolves
        assert out.reformulations_explored == 1
        assert {str(r[0]) for r in out.results} == {"<Alpha:1>"}


class TestRecoveryAfterFailures:
    def test_results_return_after_peers_recover(self):
        net = deploy()
        origin = net.peer_ids()[0]
        killed = kill_owners(net, schema_key("Zulu"), origin)
        if not killed:
            pytest.skip("origin owns the key space")
        degraded = net.search_for(QUERY, strategy="iterative",
                                  origin=origin)
        for node_id in killed:
            net.network.set_online(node_id, True)
        recovered = net.search_for(QUERY, strategy="iterative",
                                   origin=origin)
        assert recovered.result_count >= degraded.result_count
        assert recovered.result_count == 2
