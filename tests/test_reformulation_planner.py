"""Tests for reformulation planning over a mapping graph."""

from repro.mapping.graph import MappingGraph
from repro.mapping.model import PredicateCorrespondence, SchemaMapping
from repro.rdf.parser import parse_search_for
from repro.rdf.terms import URI
from repro.reformulation.planner import plan_reformulations


def edge(mapping_id, src, dst, pairs):
    return SchemaMapping(
        mapping_id, src, dst,
        [PredicateCorrespondence(URI(f"{src}#{a}"), URI(f"{dst}#{b}"))
         for a, b in pairs],
    )


QUERY = parse_search_for("SearchFor(x? : (x?, A#org, %Asp%))")


class TestPlanner:
    def test_empty_graph_only_original(self):
        plans = plan_reformulations(QUERY, MappingGraph())
        assert len(plans) == 1
        assert plans[0].query == QUERY
        assert plans[0].hops == 0
        assert plans[0].min_confidence == 1.0

    def test_exclude_original(self):
        plans = plan_reformulations(QUERY, MappingGraph(),
                                    include_original=False)
        assert plans == []

    def test_single_hop(self):
        graph = MappingGraph([edge("m1", "A", "B", [("org", "name")])])
        plans = plan_reformulations(QUERY, graph)
        assert len(plans) == 2
        assert plans[1].query.patterns[0].predicate == URI("B#name")
        assert plans[1].hops == 1

    def test_chain_explored_breadth_first(self):
        graph = MappingGraph([
            edge("m1", "A", "B", [("org", "name")]),
            edge("m2", "B", "C", [("name", "species")]),
        ])
        plans = plan_reformulations(QUERY, graph)
        assert [p.hops for p in plans] == [0, 1, 2]

    def test_max_hops_truncates(self):
        graph = MappingGraph([
            edge("m1", "A", "B", [("org", "name")]),
            edge("m2", "B", "C", [("name", "species")]),
        ])
        plans = plan_reformulations(QUERY, graph, max_hops=1)
        assert [p.hops for p in plans] == [0, 1]

    def test_cycle_terminates_with_dedup(self):
        graph = MappingGraph([
            edge("m1", "A", "B", [("org", "name")]),
            edge("m2", "B", "A", [("name", "org")]),
        ])
        plans = plan_reformulations(QUERY, graph, max_hops=10)
        # A->B then B->A reproduces the original query: deduped.
        assert len(plans) == 2

    def test_diamond_produces_each_query_once(self):
        graph = MappingGraph([
            edge("m1", "A", "B", [("org", "name")]),
            edge("m2", "A", "C", [("org", "spec")]),
            edge("m3", "B", "D", [("name", "final")]),
            edge("m4", "C", "D", [("spec", "final")]),
        ])
        plans = plan_reformulations(QUERY, graph)
        queries = [p.query for p in plans]
        assert len(queries) == len(set(queries)) == 4

    def test_min_confidence_is_weakest_link(self):
        weak = SchemaMapping(
            "m2", "B", "C",
            [PredicateCorrespondence(URI("B#name"), URI("C#species"))],
            provenance="auto", confidence=0.6,
        )
        graph = MappingGraph([
            edge("m1", "A", "B", [("org", "name")]), weak,
        ])
        plans = plan_reformulations(QUERY, graph)
        assert plans[2].min_confidence == 0.6

    def test_deprecated_mapping_not_planned(self):
        graph = MappingGraph([
            edge("m1", "A", "B", [("org", "name")]).with_deprecated(True),
        ])
        # must re-add because with_deprecated returns a copy
        graph = MappingGraph(
            [edge("m1", "A", "B", [("org", "name")]).with_deprecated(True)])
        assert len(plan_reformulations(QUERY, graph)) == 1

    def test_target_schemas_reported(self):
        graph = MappingGraph([edge("m1", "A", "B", [("org", "name")])])
        plans = plan_reformulations(QUERY, graph)
        assert plans[1].target_schemas == {"B"}
