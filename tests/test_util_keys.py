"""Unit and property tests for the binary key primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.keys import Key, common_prefix_length

bits = st.text(alphabet="01", max_size=64)


class TestKeyBasics:
    def test_empty_key(self):
        k = Key("")
        assert len(k) == 0
        assert k.to_int() == 0
        assert k.as_fraction() == 0.0
        assert str(k) == "<root>"

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Key("012")

    def test_from_int_round_trip(self):
        assert Key.from_int(5, 4) == Key("0101")
        assert Key.from_int(5, 4).to_int() == 5

    def test_from_int_rejects_overflow(self):
        with pytest.raises(ValueError):
            Key.from_int(16, 4)

    def test_from_int_rejects_negative(self):
        with pytest.raises(ValueError):
            Key.from_int(-1, 4)

    def test_bit_access(self):
        k = Key("0110")
        assert [k.bit(i) for i in range(4)] == ["0", "1", "1", "0"]

    def test_prefix(self):
        assert Key("0110").prefix(2) == Key("01")

    def test_is_prefix_of(self):
        assert Key("01").is_prefix_of(Key("0110"))
        assert Key("").is_prefix_of(Key("0110"))
        assert not Key("10").is_prefix_of(Key("0110"))
        assert Key("01").is_prefix_of(Key("01"))  # non-strict

    def test_append_and_concat(self):
        assert Key("01").append("1") == Key("011")
        assert Key("01").concat(Key("10")) == Key("0110")

    def test_append_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            Key("01").append("2")

    def test_flip(self):
        assert Key("0110").flip(0) == Key("1110")
        assert Key("0110").flip(3) == Key("0111")

    def test_sibling_prefix(self):
        # level-i sibling: first i bits kept, bit i flipped
        assert Key("0110").sibling_prefix(0) == Key("1")
        assert Key("0110").sibling_prefix(2) == Key("010")

    def test_sibling_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            Key("01").sibling_prefix(2)

    def test_ordering_is_lexicographic(self):
        assert Key("0") < Key("00") < Key("01") < Key("1")

    def test_as_fraction(self):
        assert Key("1").as_fraction() == 0.5
        assert Key("01").as_fraction() == 0.25
        assert Key("11").as_fraction() == 0.75

    def test_hashable_and_eq(self):
        assert len({Key("01"), Key("01"), Key("10")}) == 2

    def test_not_equal_to_string(self):
        assert Key("01") != "01"


class TestCommonPrefix:
    def test_identical(self):
        assert common_prefix_length(Key("0110"), Key("0110")) == 4

    def test_divergent_first_bit(self):
        assert common_prefix_length(Key("0110"), Key("1110")) == 0

    def test_partial(self):
        assert common_prefix_length(Key("0011"), Key("0010")) == 3

    def test_different_lengths(self):
        assert common_prefix_length(Key("01"), Key("0110")) == 2


class TestKeyProperties:
    @given(bits)
    def test_round_trip_via_int(self, s):
        k = Key(s)
        if s:  # from_int cannot reproduce leading-zero-free empty keys
            assert Key.from_int(k.to_int(), len(s)) == k

    @given(bits, bits)
    def test_common_prefix_symmetric(self, a, b):
        assert (common_prefix_length(Key(a), Key(b))
                == common_prefix_length(Key(b), Key(a)))

    @given(bits, bits)
    def test_common_prefix_bounded(self, a, b):
        n = common_prefix_length(Key(a), Key(b))
        assert 0 <= n <= min(len(a), len(b))
        assert a[:n] == b[:n]
        if n < min(len(a), len(b)):
            assert a[n] != b[n]

    @given(bits)
    def test_prefix_is_prefix(self, s):
        k = Key(s)
        for i in range(len(s) + 1):
            assert k.prefix(i).is_prefix_of(k)

    @given(bits)
    def test_fraction_in_unit_interval(self, s):
        assert 0.0 <= Key(s).as_fraction() < 1.0

    @given(st.text(alphabet="01", min_size=1, max_size=32),
           st.data())
    def test_flip_is_involution(self, s, data):
        i = data.draw(st.integers(0, len(s) - 1))
        k = Key(s)
        assert k.flip(i).flip(i) == k

    @given(st.text(alphabet="01", min_size=1, max_size=32), st.data())
    def test_sibling_prefix_diverges_at_level(self, s, data):
        i = data.draw(st.integers(0, len(s) - 1))
        sib = Key(s).sibling_prefix(i)
        assert len(sib) == i + 1
        assert common_prefix_length(Key(s), sib) == i
