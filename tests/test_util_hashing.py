"""Tests for the order-preserving and uniform hash functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import (
    DEFAULT_KEY_BITS,
    order_preserving_hash,
    uniform_hash,
)

printable = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    max_size=40,
)


class TestOrderPreservingHash:
    def test_width(self):
        assert len(order_preserving_hash("abc")) == DEFAULT_KEY_BITS
        assert len(order_preserving_hash("abc", bits=16)) == 16

    def test_deterministic(self):
        assert (order_preserving_hash("EMBL#Organism")
                == order_preserving_hash("EMBL#Organism"))

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            order_preserving_hash("x", bits=0)

    def test_known_order(self):
        # The paper's two predicates: string order must be preserved.
        a = order_preserving_hash("EMBL#Organism")
        b = order_preserving_hash("EMP#SystematicName")
        assert ("EMBL#Organism" <= "EMP#SystematicName") == (a <= b)

    def test_empty_string_is_smallest(self):
        assert order_preserving_hash("") <= order_preserving_hash("a")

    def test_shared_prefix_goes_to_shared_key_region(self):
        # Strings with a long common prefix hash to nearby keys: their
        # key common prefix should be substantial.
        from repro.util.keys import common_prefix_length
        a = order_preserving_hash("SwissProt#Organism")
        b = order_preserving_hash("SwissProt#Organelle")
        c = order_preserving_hash("AAA#zzz")
        assert (common_prefix_length(a, b)
                > common_prefix_length(a, c))

    @given(printable, printable)
    def test_order_preservation(self, a, b):
        ha = order_preserving_hash(a)
        hb = order_preserving_hash(b)
        if a <= b:
            assert ha <= hb
        else:
            assert ha >= hb

    @given(printable)
    def test_width_property(self, s):
        assert len(order_preserving_hash(s, bits=24)) == 24


class TestUniformHash:
    def test_width(self):
        assert len(uniform_hash("abc")) == DEFAULT_KEY_BITS
        assert len(uniform_hash("abc", bits=8)) == 8

    def test_deterministic_across_calls(self):
        assert uniform_hash("x") == uniform_hash("x")

    def test_distinct_inputs_differ(self):
        # Not guaranteed in general, but these must differ for any
        # sane 48-bit hash.
        assert uniform_hash("schema-a") != uniform_hash("schema-b")

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            uniform_hash("x", bits=-1)

    @given(st.lists(printable, min_size=30, max_size=30, unique=True))
    def test_spreads_over_keyspace(self, values):
        # The top bit should split a batch of distinct values roughly
        # in half — loose bound, just catching catastrophic bias.
        tops = [uniform_hash(v).bit(0) for v in values]
        ones = tops.count("1")
        assert 3 <= ones <= 27
