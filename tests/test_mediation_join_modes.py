"""Tests for conjunctive-join execution modes (parallel vs bound)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mediation.network import GridVineNetwork
from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Triple
from repro.schema.model import Schema

X, Y = Variable("x"), Variable("y")


class TestSubstitute:
    def test_substitutes_bound_variables(self):
        pattern = TriplePattern(X, URI("S#len"), Y)
        ground = pattern.substitute({X: URI("S:e1")})
        assert ground.subject == URI("S:e1")
        assert ground.object == Y

    def test_unbound_variables_survive(self):
        pattern = TriplePattern(X, URI("S#len"), Y)
        assert pattern.substitute({}) == pattern

    def test_irrelevant_bindings_ignored(self):
        pattern = TriplePattern(X, URI("S#len"), Literal("v"))
        z = Variable("z")
        assert pattern.substitute({z: URI("nope")}) == pattern


def deploy(num_entries=30, num_selected=5, seed=3):
    net = GridVineNetwork.build(num_peers=24, seed=seed)
    schema = Schema("S", ["org", "len", "gene"], domain="jm")
    net.insert_schema(schema)
    triples = []
    for i in range(num_entries):
        organism = "Aspergillus" if i < num_selected else "Yeast"
        triples.append(Triple(URI(f"S:e{i}"), URI("S#org"),
                              Literal(organism)))
        triples.append(Triple(URI(f"S:e{i}"), URI("S#len"),
                              Literal(str(100 + i))))
        triples.append(Triple(URI(f"S:e{i}"), URI("S#gene"),
                              Literal(f"g{i % 7}")))
    net.insert_triples(triples)
    net.settle()
    return net


def set_mode(net, mode):
    for peer in net.peers.values():
        peer.join_mode = mode


TWO_PATTERN = ('SearchFor(x?, y? : (x?, S#org, "Aspergillus") '
               'AND (x?, S#len, y?))')
THREE_PATTERN = ('SearchFor(x?, y?, z? : (x?, S#org, "Aspergillus") '
                 'AND (x?, S#len, y?) AND (x?, S#gene, z?))')


class TestBoundJoin:
    def test_two_pattern_equivalence(self):
        net = deploy()
        set_mode(net, "parallel")
        parallel = net.search_for(TWO_PATTERN, strategy="local")
        set_mode(net, "bound")
        bound = net.search_for(TWO_PATTERN, strategy="local")
        assert parallel.results == bound.results
        assert bound.result_count == 5

    def test_three_pattern_equivalence(self):
        net = deploy()
        set_mode(net, "parallel")
        parallel = net.search_for(THREE_PATTERN, strategy="local")
        set_mode(net, "bound")
        bound = net.search_for(THREE_PATTERN, strategy="local")
        assert parallel.results == bound.results
        assert bound.result_count == 5

    def test_bound_ships_fewer_values(self):
        net = deploy(num_entries=40, num_selected=3)
        set_mode(net, "parallel")
        net.network.metrics.reset()
        net.search_for(TWO_PATTERN, strategy="local")
        parallel_shipped = net.metrics_snapshot()["values_shipped"]
        set_mode(net, "bound")
        net.network.metrics.reset()
        net.search_for(TWO_PATTERN, strategy="local")
        bound_shipped = net.metrics_snapshot()["values_shipped"]
        assert bound_shipped < parallel_shipped

    def test_empty_selective_side_short_circuits(self):
        net = deploy(num_selected=0)
        set_mode(net, "bound")
        out = net.search_for(TWO_PATTERN, strategy="local")
        assert out.result_count == 0

    def test_fanout_cap_falls_back_to_unbound(self):
        net = deploy(num_entries=40, num_selected=30)
        for peer in net.peers.values():
            peer.join_mode = "bound"
            peer.bound_join_fanout_cap = 4  # force the fallback
        out = net.search_for(TWO_PATTERN, strategy="local")
        assert out.result_count == 30

    def test_single_pattern_unaffected_by_mode(self):
        net = deploy()
        set_mode(net, "bound")
        out = net.search_for(
            'SearchFor(x? : (x?, S#org, "Aspergillus"))',
            strategy="local")
        assert out.result_count == 5

    def test_bound_join_with_reformulation(self):
        net = deploy()
        target = Schema("T", ["species", "length"], domain="jm")
        net.insert_schema(target)
        net.insert_triples([
            Triple(URI("T:1"), URI("T#species"), Literal("Aspergillus")),
            Triple(URI("T:1"), URI("T#length"), Literal("777")),
        ])
        net.create_mapping(net.peers[net.peer_ids()[0]] and
                           Schema("S", ["org", "len", "gene"],
                                  domain="jm"),
                           target,
                           [("org", "species"), ("len", "length")])
        net.settle()
        set_mode(net, "bound")
        out = net.search_for(TWO_PATTERN, strategy="iterative")
        assert (URI("T:1"), Literal("777")) in out.results
        assert out.result_count == 6

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 100))
    def test_mode_equivalence_property(self, num_selected, seed):
        rng = random.Random(seed)
        net = deploy(num_entries=20,
                     num_selected=min(num_selected, 20),
                     seed=rng.randrange(1000))
        set_mode(net, "parallel")
        parallel = net.search_for(THREE_PATTERN, strategy="local")
        set_mode(net, "bound")
        bound = net.search_for(THREE_PATTERN, strategy="local")
        assert parallel.results == bound.results


class TestQueryOutcomeMessages:
    def test_messages_counted_per_query(self):
        net = deploy()
        out = net.search_for(
            'SearchFor(x? : (x?, S#org, "Aspergillus"))',
            strategy="local")
        assert out.messages >= 0
        # a second identical query costs a comparable amount
        again = net.search_for(
            'SearchFor(x? : (x?, S#org, "Aspergillus"))',
            strategy="local")
        assert abs(again.messages - out.messages) <= 12
