"""Unit tests: CounterGroup, FailoverCounters, MetricsRegistry."""

import pytest

from repro.obs.registry import (
    CounterGroup,
    FailoverCounters,
    MetricsRegistry,
)
from repro.pgrid.peer import PGridPeer
from repro.util.keys import Key


class Sample(CounterGroup):
    _fields = ("alpha", "beta")
    __slots__ = _fields


class TestCounterGroup:
    def test_starts_at_zero(self):
        group = Sample()
        assert group.alpha == 0 and group.beta == 0

    def test_attribute_and_item_access_agree(self):
        group = Sample()
        group.alpha += 3
        assert group["alpha"] == 3
        group["beta"] = 7
        assert group.beta == 7

    def test_unknown_key_raises(self):
        group = Sample()
        with pytest.raises(KeyError):
            group["gamma"]
        with pytest.raises(KeyError):
            group["gamma"] = 1

    def test_mapping_interface(self):
        group = Sample()
        group.alpha = 2
        assert "alpha" in group and "gamma" not in group
        assert list(group) == ["alpha", "beta"]
        assert len(group) == 2
        assert group.keys() == ("alpha", "beta")
        assert group.values() == [2, 0]
        assert group.items() == [("alpha", 2), ("beta", 0)]
        assert group.get("beta") == 0
        assert group.get("gamma", "missing") == "missing"
        assert dict(group.items()) == {"alpha": 2, "beta": 0}

    def test_equality_with_dicts_and_groups(self):
        group, other = Sample(), Sample()
        group.alpha = 1
        assert group == {"alpha": 1, "beta": 0}
        assert group != other
        other.alpha = 1
        assert group == other

    def test_snapshot_is_a_copy(self):
        group = Sample()
        snap = group.snapshot()
        group.alpha = 9
        assert snap == {"alpha": 0, "beta": 0}

    def test_reset(self):
        group = Sample()
        group.alpha = 4
        group.reset()
        assert group == {"alpha": 0, "beta": 0}


class TestFailoverCounters:
    def test_fields(self):
        counters = FailoverCounters()
        assert counters.keys() == (
            "failovers", "retries", "gave_up", "cancelled")

    def test_peer_property_view_preserves_dict_vocabulary(self):
        """The historical ``failover_stats`` dict reads/writes survive."""
        peer = PGridPeer("p", Key("0"))
        stats = peer.failover_stats
        assert isinstance(stats, FailoverCounters)
        # dict-style reads (the historical idiom all reporters use)
        assert stats["retries"] == 0
        assert sorted(stats) == ["cancelled", "failovers", "gave_up",
                                 "retries"]
        assert dict(stats.items()) == {
            "failovers": 0, "retries": 0, "gave_up": 0, "cancelled": 0}
        # dict-style writes still land on the live counters
        peer.failover_stats["retries"] = 5
        assert peer.failover_stats["retries"] == 5
        assert peer._failover.retries == 5
        # attribute increments (the hot path) visible through the view
        peer._failover.gave_up += 1
        assert peer.failover_stats["gave_up"] == 1


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("messages")
        registry.inc("messages", 2)
        registry.inc("messages", labels=("route",))
        registry.set_gauge("peers", 48)
        registry.observe("latency", 0.5)
        registry.observe("latency", 1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"messages": 3, "messages{route}": 1}
        assert snap["gauges"] == {"peers": 48}
        assert snap["histograms"]["latency"] == {
            "count": 2, "sum": 2.0, "min": 0.5, "max": 1.5}
        assert registry.counter_value("messages") == 3
        assert registry.counter_value("missing") == 0

    def test_views_evaluate_lazily(self):
        registry = MetricsRegistry()
        calls = []

        def view():
            calls.append(1)
            return {"value": len(calls)}

        registry.register_view("lazy", view)
        assert calls == []
        assert registry.view_names() == ["lazy"]
        assert registry.snapshot()["views"]["lazy"] == {"value": 1}
        assert registry.snapshot()["views"]["lazy"] == {"value": 2}

    def test_reregistering_replaces_view(self):
        registry = MetricsRegistry()
        registry.register_view("v", lambda: 1)
        registry.register_view("v", lambda: 2)
        assert registry.snapshot()["views"] == {"v": 2}

    def test_diff_subtracts_numeric_leaves(self):
        registry = MetricsRegistry()
        registry.inc("a", 5)
        before = registry.snapshot()
        registry.inc("a", 3)
        registry.inc("b")
        after = registry.snapshot()
        delta = MetricsRegistry.diff(before, after)
        assert delta["counters"] == {"a": 3, "b": 1}

    def test_diff_drops_zero_deltas_and_keeps_changed_strings(self):
        before = {"views": {"x": {"mode": "cold", "n": 2}}}
        after = {"views": {"x": {"mode": "warm", "n": 2}}}
        assert MetricsRegistry.diff(before, after) == {
            "views": {"x": {"mode": "warm"}}}
