"""Tests for the per-peer triple database."""

from hypothesis import given
from hypothesis import strategies as st

from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Position, Triple
from repro.storage.triplestore import TripleStore


def t(s, p, o):
    return Triple(URI(s), URI(p), Literal(o))


def make_store(*triples):
    store = TripleStore()
    store.add_all(triples)
    return store


class TestMutation:
    def test_add_and_count(self):
        store = make_store(t("s", "p", "o"))
        assert store.count() == 1
        assert t("s", "p", "o") in store

    def test_add_duplicate_is_noop(self):
        store = TripleStore()
        assert store.add(t("s", "p", "o")) is True
        assert store.add(t("s", "p", "o")) is False
        assert store.count() == 1

    def test_remove(self):
        store = make_store(t("s", "p", "o"))
        assert store.remove(t("s", "p", "o")) is True
        assert store.count() == 0
        assert store.remove(t("s", "p", "o")) is False

    def test_remove_cleans_indexes(self):
        store = make_store(t("s", "p", "o"))
        store.remove(t("s", "p", "o"))
        assert store.by_position(Position.SUBJECT, URI("s")) == set()
        assert store.distinct_values(Position.PREDICATE) == set()

    def test_clear(self):
        store = make_store(t("a", "b", "c"), t("d", "e", "f"))
        store.clear()
        assert store.count() == 0

    def test_add_all_returns_inserted_count(self):
        store = TripleStore()
        n = store.add_all([t("a", "b", "c"), t("a", "b", "c"),
                           t("d", "e", "f")])
        assert n == 2


class TestIndexes:
    def test_by_position(self):
        s = make_store(t("s1", "p", "o1"), t("s2", "p", "o2"))
        assert len(s.by_position(Position.PREDICATE, URI("p"))) == 2
        assert len(s.by_position(Position.SUBJECT, URI("s1"))) == 1
        assert s.by_position(Position.OBJECT, Literal("o1")) == {
            t("s1", "p", "o1")}

    def test_distinct_values(self):
        s = make_store(t("s1", "p", "o"), t("s2", "p", "o"))
        assert s.distinct_values(Position.SUBJECT) == {URI("s1"), URI("s2")}
        assert s.distinct_values(Position.OBJECT) == {Literal("o")}


class TestMatch:
    def test_all_variables_binds_everything(self):
        s = make_store(t("s", "p", "o"))
        bindings = s.match(TriplePattern(Variable("x"), Variable("y"),
                                         Variable("z")))
        assert bindings == [{Variable("x"): URI("s"),
                             Variable("y"): URI("p"),
                             Variable("z"): Literal("o")}]

    def test_constant_probe(self):
        s = make_store(t("s1", "p", "o1"), t("s2", "q", "o2"))
        bindings = s.match(TriplePattern(Variable("x"), URI("p"),
                                         Variable("y")))
        assert bindings == [{Variable("x"): URI("s1"),
                             Variable("y"): Literal("o1")}]

    def test_like_pattern_matching(self):
        s = make_store(t("s1", "p", "Aspergillus niger"),
                       t("s2", "p", "Saccharomyces"))
        bindings = s.match(TriplePattern(Variable("x"), URI("p"),
                                         Literal("%Aspergillus%")))
        assert [b[Variable("x")] for b in bindings] == [URI("s1")]

    def test_boolean_query_semantics(self):
        s = make_store(t("s", "p", "o"))
        assert s.match(TriplePattern(URI("s"), URI("p"),
                                     Literal("o"))) == [{}]
        assert s.match(TriplePattern(URI("s"), URI("p"),
                                     Literal("nope"))) == []

    def test_repeated_variable_must_bind_consistently(self):
        s = TripleStore()
        s.add(Triple(URI("x"), URI("p"), URI("x")))
        s.add(Triple(URI("x"), URI("p"), URI("y")))
        x = Variable("v")
        bindings = s.match(TriplePattern(x, URI("p"), x))
        assert bindings == [{x: URI("x")}]

    def test_matching_triples(self):
        s = make_store(t("s1", "p", "o"), t("s2", "p", "o"),
                       t("s3", "q", "o"))
        found = s.matching_triples(TriplePattern(Variable("x"), URI("p"),
                                                 Variable("y")))
        assert len(found) == 2

    def test_match_uses_most_selective_index(self):
        # Functional check: results identical regardless of which
        # constant is most selective.
        s = make_store(*[t(f"s{i}", "common", "o") for i in range(20)],
                       t("rare", "common", "o"))
        pattern = TriplePattern(URI("rare"), URI("common"), Variable("z"))
        assert s.match(pattern) == [{Variable("z"): Literal("o")}]


class TestRelationalView:
    def test_as_relation_shape(self):
        s = make_store(t("s", "p", "o"))
        rel = s.as_relation()
        assert rel.columns == ("subject", "predicate", "object")
        assert rel.rows == ((URI("s"), URI("p"), Literal("o")),)

    def test_paper_local_plan(self):
        # Results = pi_pos(x) sigma_pos(const)=const (DB)
        s = make_store(t("e1", "EMBL#Organism", "Aspergillus niger"),
                       t("e2", "EMBL#Organism", "Yeast"),
                       t("e1", "EMBL#SeqLength", "120"))
        rel = s.as_relation()
        out = rel.select(
            lambda row: (row["predicate"] == URI("EMBL#Organism")
                         and "Aspergillus" in row["object"].value)
        ).project(["subject"])
        assert out.rows == ((URI("e1"),),)


names = st.text(alphabet="abcdef", min_size=1, max_size=4)


class TestStoreProperties:
    @given(st.lists(st.tuples(names, names, names), max_size=30))
    def test_count_matches_distinct_inserts(self, raw):
        triples = [t(*row) for row in raw]
        store = TripleStore()
        store.add_all(triples)
        assert store.count() == len(set(triples))

    @given(st.lists(st.tuples(names, names, names), max_size=30))
    def test_match_all_returns_everything(self, raw):
        triples = {t(*row) for row in raw}
        store = TripleStore()
        store.add_all(triples)
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert len(store.match(pattern)) == len(triples)

    @given(st.lists(st.tuples(names, names, names), min_size=1,
                    max_size=30))
    def test_add_remove_round_trip(self, raw):
        triples = [t(*row) for row in raw]
        store = TripleStore()
        store.add_all(triples)
        for triple in set(triples):
            store.remove(triple)
        assert store.count() == 0
        assert store.as_relation().rows == ()
