"""Edge-case sweep across small surfaces not covered elsewhere."""

import pytest

from repro.mapping.graph import MappingGraph
from repro.mapping.model import PredicateCorrespondence, SchemaMapping
from repro.mediation.query import QueryOutcome
from repro.rdf.parser import parse_search_for
from repro.rdf.terms import Literal, URI
from repro.simnet.events import EventLoop
from repro.util.keys import Key


class TestQueryOutcome:
    def make(self):
        return QueryOutcome(
            query=parse_search_for("SearchFor(x? : (x?, A#p, %v%))"),
            strategy="local",
        )

    def test_record_merges_rows(self):
        outcome = self.make()
        q2 = parse_search_for("SearchFor(x? : (x?, B#q, %v%))")
        outcome.record(outcome.query, {(URI("a"),)})
        outcome.record(q2, {(URI("b"),), (URI("a"),)})
        assert outcome.result_count == 2
        assert outcome.results_by_query[q2] == {(URI("b"),), (URI("a"),)}

    def test_sorted_results_deterministic(self):
        outcome = self.make()
        outcome.record(outcome.query,
                       {(URI("b"),), (URI("a"),), (Literal("z"),)})
        assert outcome.sorted_results() == [
            (URI("a"),), (URI("b"),), (Literal("z"),)]

    def test_repeated_record_accumulates_per_query(self):
        outcome = self.make()
        outcome.record(outcome.query, {(URI("a"),)})
        outcome.record(outcome.query, {(URI("b"),)})
        assert outcome.results_by_query[outcome.query] == {
            (URI("a"),), (URI("b"),)}


class TestEventLoopEdges:
    def test_schedule_at_past_time_fires_now(self):
        loop = EventLoop()
        loop.run_until(10.0)
        seen = []
        loop.schedule_at(5.0, lambda: seen.append(loop.now))
        loop.run_until_idle()
        assert seen == [10.0]  # clamped to now, not the past

    def test_run_until_with_empty_queue_advances_clock(self):
        loop = EventLoop()
        loop.run_until(42.0)
        assert loop.now == 42.0


class TestMappingGraphEdges:
    def edge(self, mid, src, dst):
        return SchemaMapping(
            mid, src, dst,
            [PredicateCorrespondence(URI(f"{src}#x"), URI(f"{dst}#x"))],
        )

    def test_paths_to_self_belong_to_find_cycles(self):
        graph = MappingGraph([self.edge("m1", "A", "B"),
                              self.edge("m2", "B", "A")])
        # simple paths never revisit the source; round trips are the
        # domain of find_cycles
        assert graph.find_paths("A", "A") == []
        assert len(graph.find_cycles()) == 1

    def test_degree_pairs_cover_all_schemas(self):
        graph = MappingGraph([self.edge("m1", "A", "B")])
        graph.add_schema("Lonely")
        assert len(graph.degree_pairs()) == 3

    def test_compose_empty_path(self):
        assert MappingGraph.compose_path([]) is None
        assert MappingGraph.compose_correspondences([]) == []


class TestKeyEdges:
    def test_concat_with_empty(self):
        assert Key("01").concat(Key("")) == Key("01")
        assert Key("").concat(Key("01")) == Key("01")

    def test_prefix_longer_than_key(self):
        # prefix() never pads; asking beyond length returns the key
        assert Key("01").prefix(10) == Key("01")

    def test_iteration_yields_bits(self):
        assert list(Key("011")) == ["0", "1", "1"]


class TestParserWhitespaceAndQuotes:
    def test_quoted_value_with_comma(self):
        q = parse_search_for('SearchFor(x? : (x?, A#p, "a, b"))')
        assert q.patterns[0].object == Literal("a, b")

    def test_quoted_value_with_and(self):
        q = parse_search_for('SearchFor(x? : (x?, A#p, "this AND that"))')
        assert len(q.patterns) == 1
        assert q.patterns[0].object == Literal("this AND that")

    def test_multiline_query(self):
        q = parse_search_for(
            "SearchFor(x? :\n  (x?, A#p, %v%)\n  AND (x?, A#q, y?))")
        assert len(q.patterns) == 2


class TestSchemaMappingValidationEdges:
    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            SchemaMapping(
                "m", "A", "B",
                [PredicateCorrespondence(URI("A#x"), URI("B#y"))],
                confidence=1.5,
            )

    def test_with_confidence_keeps_other_fields(self):
        mapping = SchemaMapping(
            "m", "A", "B",
            [PredicateCorrespondence(URI("A#x"), URI("B#y"))],
            provenance="auto", deprecated=True,
        )
        updated = mapping.with_confidence(0.1)
        assert updated.deprecated
        assert updated.provenance == "auto"
        assert updated.confidence == 0.1
