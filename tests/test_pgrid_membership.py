"""Tests for dynamic membership: join and graceful leave."""

import pytest

from repro.mediation.network import GridVineNetwork
from repro.pgrid.membership import MembershipError
from repro.pgrid.overlay import PGridOverlay
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.util.hashing import uniform_hash


class TestJoin:
    def test_joiner_adopts_least_replicated_leaf(self):
        overlay = PGridOverlay.build(9, replication=3, seed=1)
        # make one group smaller by removing a member
        groups: dict = {}
        for node_id, peer in overlay.peers.items():
            groups.setdefault(peer.path, []).append(node_id)
        some_path, members = next(iter(sorted(groups.items())))
        overlay.leave(members[0])
        newcomer = overlay.join("peer-new")
        assert newcomer.path == some_path

    def test_joiner_clones_data(self):
        overlay = PGridOverlay.build(4, replication=2, seed=2)
        origin = overlay.peer_ids()[0]
        keys = [uniform_hash(f"k{i}") for i in range(12)]
        for i, key in enumerate(keys):
            overlay.update_sync(origin, key, i)
        overlay.loop.run_until_idle()
        newcomer = overlay.join("peer-new")
        host_load = {
            node_id: overlay.peer(node_id).storage_load()
            for node_id in newcomer.replicas
        }
        assert newcomer.storage_load() == max(host_load.values())

    def test_joiner_is_routable_and_serves(self):
        overlay = PGridOverlay.build(8, replication=2, seed=3)
        origin = overlay.peer_ids()[0]
        key = uniform_hash("findme")
        overlay.update_sync(origin, key, "v")
        overlay.loop.run_until_idle()
        newcomer = overlay.join("peer-new")
        # retrieves issued BY the newcomer work immediately
        result = overlay.loop.run_until_complete(newcomer.retrieve(key))
        assert result.success
        assert result.values == ["v"]

    def test_group_membership_is_mutual(self):
        overlay = PGridOverlay.build(6, replication=2, seed=4)
        newcomer = overlay.join("peer-new")
        for member_id in newcomer.replicas:
            assert "peer-new" in overlay.peer(member_id).replicas

    def test_duplicate_id_rejected(self):
        overlay = PGridOverlay.build(4, seed=5)
        with pytest.raises(MembershipError):
            overlay.join(overlay.peer_ids()[0])

    def test_new_writes_replicate_to_joiner(self):
        overlay = PGridOverlay.build(6, replication=2, seed=6)
        newcomer = overlay.join("peer-new")
        origin = overlay.peer_ids()[0]
        # find a key in the newcomer's partition and insert it
        key = None
        for i in range(500):
            candidate = uniform_hash(f"probe{i}")
            if newcomer.is_responsible_for(candidate):
                key = candidate
                break
        assert key is not None
        overlay.update_sync(origin, key, "fresh")
        overlay.loop.run_until_idle()
        assert newcomer.local_retrieve(key) == ["fresh"]


class TestLeave:
    def test_leave_hands_data_to_replicas(self):
        overlay = PGridOverlay.build(8, replication=2, seed=7)
        origin = overlay.peer_ids()[0]
        keys = [uniform_hash(f"k{i}") for i in range(20)]
        for i, key in enumerate(keys):
            overlay.update_sync(origin, key, i)
        overlay.loop.run_until_idle()
        leaver = next(n for n in overlay.peer_ids()
                      if n != origin and overlay.peer(n).replicas)
        survivors = list(overlay.peer(leaver).replicas)
        overlay.leave(leaver)
        overlay.loop.run_until_idle()  # let sync_push land
        assert leaver not in overlay.peers
        # all keys still retrievable
        for i, key in enumerate(keys):
            result = overlay.retrieve_sync(origin, key)
            assert result.success and i in result.values
        for survivor in survivors:
            assert leaver not in overlay.peer(survivor).replicas

    def test_sole_owner_cannot_leave(self):
        overlay = PGridOverlay.build(4, replication=1, seed=8)
        with pytest.raises(MembershipError):
            overlay.leave(overlay.peer_ids()[0])

    def test_unknown_peer_cannot_leave(self):
        overlay = PGridOverlay.build(4, seed=9)
        with pytest.raises(MembershipError):
            overlay.leave("ghost")

    def test_join_then_leave_preserves_coverage(self):
        overlay = PGridOverlay.build(4, replication=1, seed=10)
        origin = overlay.peer_ids()[0]
        key = uniform_hash("coverage")
        overlay.update_sync(origin, key, "v")
        overlay.loop.run_until_idle()
        owner = overlay.responsible_peers(key)[0]
        if owner == origin:
            pytest.skip("origin owns the key; scenario degenerate")
        overlay.join("replacement", seed=10)
        replacement = overlay.peer("replacement")
        if replacement.path != overlay.peer(owner).path:
            pytest.skip("joiner landed on a different leaf")
        overlay.leave(owner)
        overlay.loop.run_until_idle()
        result = overlay.retrieve_sync(origin, key)
        assert result.success
        assert result.values == ["v"]


class TestMediationMembership:
    def test_gridvine_joiner_builds_registries(self):
        net = GridVineNetwork.build(num_peers=6, replication=2, seed=11)
        schema = Schema("S", ["org"], domain="m")
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI("S:1"), URI("S#org"), Literal("Aspergillus")),
        ])
        net.settle()
        newcomer = net.join("peer-new")
        # the mediation registries are populated from the cloned store
        schema_holder = any(
            "S" in net.peer(m).local_schemas
            for m in newcomer.replicas
        )
        if schema_holder:
            assert "S" in newcomer.local_schemas
        # queries from the newcomer work
        out = net.search_for(
            "SearchFor(x? : (x?, S#org, %Asp%))",
            strategy="local", origin="peer-new")
        assert out.result_count == 1

    def test_leave_keeps_queries_answerable(self):
        net = GridVineNetwork.build(num_peers=12, replication=3, seed=12)
        schema = Schema("S", ["org"], domain="m")
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI(f"S:{i}"), URI("S#org"), Literal(f"Asp {i}"))
            for i in range(10)
        ])
        net.settle()
        origin = net.peer_ids()[0]
        leaver = next(n for n in net.peer_ids() if n != origin)
        net.leave(leaver)
        net.settle()
        out = net.search_for("SearchFor(x? : (x?, S#org, %Asp%))",
                             strategy="local", origin=origin)
        assert out.result_count == 10
