"""Property tests for :class:`TripleStore.match` binding dedup.

``match`` deduplicates equal binding dicts (the same bindings can be
produced by several LIKE matches) through a sorted ``(name, repr)``
key.  The property under test: deduplication may only merge *equal*
bindings — it must never drop a distinct one, and the surviving list
must be duplicate-free.  The reference semantics is the brute-force
evaluation over every stored triple.
"""

from hypothesis import given
from hypothesis import strategies as st
from strategies import QUICK_SETTINGS, STANDARD_SETTINGS

from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Triple
from repro.storage.triplestore import TripleStore

# Small pools on purpose: collisions (same subject, same value, URI vs
# Literal with identical text) are exactly where dedup could go wrong.
_NAMES = ["a", "b", "ab", "%a%", "a%"]

uris = st.sampled_from(_NAMES).map(URI)
literals = st.sampled_from(_NAMES).map(Literal)
ground_terms = st.one_of(uris, literals)
variables = st.sampled_from(["x", "y"]).map(Variable)

triples = st.builds(Triple, uris, uris, ground_terms)
# Subject/predicate slots admit URIs or variables; only the object
# slot may hold (LIKE-)literals — mirroring TriplePattern's contract.
node_terms = st.one_of(uris, variables)
object_terms = st.one_of(ground_terms, variables)
patterns = st.builds(TriplePattern, node_terms, node_terms,
                     object_terms)


def brute_force_bindings(store, pattern):
    """Reference: distinct bindings by *dict equality* over all triples."""
    distinct = []
    for triple in store.all_triples():
        bindings = pattern.matches(triple)
        if bindings is not None and bindings not in distinct:
            distinct.append(bindings)
    return distinct


class TestMatchDedupProperty:
    @STANDARD_SETTINGS
    @given(st.lists(triples, max_size=12), patterns)
    def test_dedup_never_drops_distinct_bindings(self, triple_list,
                                                 pattern):
        store = TripleStore()
        store.add_all(triple_list)
        got = store.match(pattern)
        if not pattern.variables():
            # Boolean semantics: [{}] iff any triple matches.
            expected = ([{}] if any(pattern.matches(t) is not None
                                    for t in triple_list) else [])
            assert got == expected
            return
        reference = brute_force_bindings(store, pattern)
        # Every distinct binding survives dedup ...
        for binding in reference:
            assert binding in got
        # ... and nothing is duplicated or invented.
        assert len(got) == len(reference)
        for binding in got:
            assert binding in reference

    @QUICK_SETTINGS
    @given(st.lists(triples, max_size=8))
    def test_full_wildcard_returns_one_binding_per_triple(self,
                                                          triple_list):
        store = TripleStore()
        store.add_all(triple_list)
        pattern = TriplePattern(Variable("x"), Variable("y"),
                                Variable("z"))
        got = store.match(pattern)
        assert len(got) == len(brute_force_bindings(store, pattern))
