"""Tests for schemas, correspondences and mappings."""

import pytest

from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
    SchemaMapping,
)
from repro.rdf.terms import URI
from repro.schema.model import Schema


class TestSchema:
    def test_attributes_sorted_and_deduped(self):
        s = Schema("S", ["b", "a", "b"])
        assert s.attributes == ("a", "b")

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Schema("", ["a"])

    def test_rejects_hash_in_name(self):
        with pytest.raises(ValueError):
            Schema("S#T", ["a"])

    def test_rejects_empty_attribute_set(self):
        with pytest.raises(ValueError):
            Schema("S", [])

    def test_rejects_bad_attribute(self):
        with pytest.raises(ValueError):
            Schema("S", ["a#b"])

    def test_predicate_uri(self):
        s = Schema("EMBL", ["Organism"])
        assert s.predicate("Organism") == URI("EMBL#Organism")

    def test_predicate_unknown_attribute(self):
        s = Schema("EMBL", ["Organism"])
        with pytest.raises(KeyError):
            s.predicate("Nope")

    def test_owns_predicate(self):
        s = Schema("EMBL", ["Organism"])
        assert s.owns_predicate(URI("EMBL#Organism"))
        assert not s.owns_predicate(URI("EMP#Organism"))
        assert not s.owns_predicate(URI("EMBL#Other"))

    def test_predicates_list(self):
        s = Schema("S", ["b", "a"])
        assert s.predicates() == [URI("S#a"), URI("S#b")]

    def test_equality_and_hash(self):
        assert Schema("S", ["a"]) == Schema("S", ["a"])
        assert Schema("S", ["a"]) != Schema("S", ["a"], domain="bio")
        assert len({Schema("S", ["a"]), Schema("S", ["a"])}) == 1

    def test_immutability(self):
        s = Schema("S", ["a"])
        with pytest.raises(AttributeError):
            s.name = "T"


class TestCorrespondence:
    def test_requires_uris(self):
        with pytest.raises(TypeError):
            PredicateCorrespondence("A#x", URI("B#y"))

    def test_score_range(self):
        with pytest.raises(ValueError):
            PredicateCorrespondence(URI("A#x"), URI("B#y"), score=1.5)

    def test_reversed_equivalence(self):
        c = PredicateCorrespondence(URI("A#x"), URI("B#y"))
        r = c.reversed()
        assert r.source == URI("B#y")
        assert r.target == URI("A#x")

    def test_reversed_subsumption_rejected(self):
        c = PredicateCorrespondence(URI("A#x"), URI("B#y"),
                                    kind=MappingKind.SUBSUMPTION)
        with pytest.raises(ValueError):
            c.reversed()


def make_mapping(**kwargs):
    defaults = dict(
        mapping_id="m1",
        source_schema="A",
        target_schema="B",
        correspondences=[
            PredicateCorrespondence(URI("A#x"), URI("B#y")),
            PredicateCorrespondence(URI("A#z"), URI("B#w"),
                                    kind=MappingKind.SUBSUMPTION),
        ],
    )
    defaults.update(kwargs)
    return SchemaMapping(**defaults)


class TestSchemaMapping:
    def test_requires_correspondences(self):
        with pytest.raises(ValueError):
            make_mapping(correspondences=[])

    def test_rejects_self_mapping(self):
        with pytest.raises(ValueError):
            make_mapping(target_schema="A", correspondences=[
                PredicateCorrespondence(URI("A#x"), URI("A#y"))])

    def test_correspondence_schemas_validated(self):
        with pytest.raises(ValueError):
            make_mapping(correspondences=[
                PredicateCorrespondence(URI("C#x"), URI("B#y"))])
        with pytest.raises(ValueError):
            make_mapping(correspondences=[
                PredicateCorrespondence(URI("A#x"), URI("C#y"))])

    def test_provenance_validated(self):
        with pytest.raises(ValueError):
            make_mapping(provenance="robot")

    def test_translate(self):
        m = make_mapping()
        assert m.translate(URI("A#x")) == URI("B#y")
        assert m.translate(URI("A#unmapped")) is None

    def test_mapped_predicates(self):
        assert make_mapping().mapped_predicates() == {URI("A#x"), URI("A#z")}

    def test_reversed_keeps_only_equivalences(self):
        r = make_mapping().reversed()
        assert r.source_schema == "B"
        assert r.target_schema == "A"
        assert len(r.correspondences) == 1  # the subsumption is dropped
        assert r.mapping_id == "m1~rev"

    def test_reversed_pure_subsumption_rejected(self):
        m = make_mapping(correspondences=[
            PredicateCorrespondence(URI("A#x"), URI("B#y"),
                                    kind=MappingKind.SUBSUMPTION)])
        with pytest.raises(ValueError):
            m.reversed()

    def test_with_deprecated_is_copy(self):
        m = make_mapping()
        d = m.with_deprecated(True)
        assert d.deprecated and not m.deprecated
        assert not d.active and m.active
        assert d != m  # value semantics: the flag matters for equality

    def test_with_confidence(self):
        m = make_mapping().with_confidence(0.2)
        assert m.confidence == 0.2

    def test_user_flag(self):
        assert make_mapping().is_user_defined
        assert not make_mapping(provenance="auto").is_user_defined

    def test_equality_by_full_content(self):
        assert make_mapping() == make_mapping()
        assert make_mapping() != make_mapping(mapping_id="m2")
