"""Tests for the discrete-event loop and futures."""

import pytest

from repro.simnet.events import EventLoop, Future, SimulationError, gather


class TestEventLoop:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, fired.append, "b")
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(3.0, fired.append, "c")
        loop.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_fires_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.schedule(1.0, fired.append, tag)
        loop.run_until_idle()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.5, lambda: seen.append(loop.now))
        loop.run_until_idle()
        assert seen == [2.5]
        assert loop.now == 2.5

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)

    def test_cancel_prevents_firing(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, fired.append, "x")
        handle.cancel()
        loop.run_until_idle()
        assert fired == []

    def test_cancel_is_idempotent(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        loop.run_until_idle()

    def test_events_scheduled_during_run_fire(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: loop.schedule(1.0, fired.append, "n"))
        loop.run_until_idle()
        assert fired == ["n"]
        assert loop.now == 2.0

    def test_run_until_stops_at_time(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(5.0, fired.append, "b")
        loop.run_until(2.0)
        assert fired == ["a"]
        assert loop.now == 2.0
        loop.run_until_idle()
        assert fired == ["a", "b"]

    def test_schedule_at_absolute_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(4.0, lambda: seen.append(loop.now))
        loop.run_until_idle()
        assert seen == [4.0]

    def test_run_until_idle_event_budget(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(1.0, reschedule)

        loop.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run_until_idle(max_events=100)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for _ in range(5):
            loop.schedule(1.0, lambda: None)
        loop.run_until_idle()
        assert loop.events_processed == 5


class TestFuture:
    def test_result_before_resolution_raises(self):
        with pytest.raises(SimulationError):
            Future().result()

    def test_set_result_and_read(self):
        f = Future()
        f.set_result(42)
        assert f.done
        assert f.result() == 42

    def test_double_resolution_rejected(self):
        f = Future()
        f.set_result(1)
        with pytest.raises(SimulationError):
            f.set_result(2)

    def test_exception_propagates(self):
        f = Future()
        f.set_exception(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            f.result()

    def test_callback_after_resolution_fires_immediately(self):
        f = Future()
        f.set_result("x")
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.result()))
        assert seen == ["x"]

    def test_callback_before_resolution_fires_on_set(self):
        f = Future()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.result()))
        assert seen == []
        f.set_result("y")
        assert seen == ["y"]

    def test_run_until_complete(self):
        loop = EventLoop()
        f = Future()
        loop.schedule(3.0, f.set_result, "done")
        assert loop.run_until_complete(f) == "done"
        assert loop.now == 3.0

    def test_run_until_complete_detects_starvation(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.run_until_complete(Future())


class TestGather:
    def test_empty_resolves_immediately(self):
        g = gather([])
        assert g.done
        assert g.result() == []

    def test_preserves_order(self):
        f1, f2, f3 = Future(), Future(), Future()
        g = gather([f1, f2, f3])
        f2.set_result("b")
        f3.set_result("c")
        assert not g.done
        f1.set_result("a")
        assert g.result() == ["a", "b", "c"]

    def test_with_already_resolved_inputs(self):
        f1 = Future()
        f1.set_result(1)
        f2 = Future()
        g = gather([f1, f2])
        f2.set_result(2)
        assert g.result() == [1, 2]

    def test_nested_gather(self):
        f1, f2 = Future(), Future()
        inner = gather([f1])
        outer = gather([inner, f2])
        f1.set_result("i")
        f2.set_result("o")
        assert outer.result() == [["i"], "o"]
