"""Tests for the self-organization controller loop."""

import pytest

from repro.mediation.network import GridVineNetwork
from repro.selforg.controller import SelfOrganizationController
from repro.selforg.creator import CreationPolicy


@pytest.fixture(scope="module")
def deployed(request):
    """A deployed network with the bio corpus and one seed mapping."""
    from repro.datagen import BioDatasetGenerator
    dataset = BioDatasetGenerator(
        num_schemas=8, num_entities=80, entities_per_schema=25, seed=3,
    ).generate()
    net = GridVineNetwork.build(num_peers=32, seed=11)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    net.insert_mapping(
        dataset.ground_truth_mapping(dataset.schemas[0].name,
                                     dataset.schemas[1].name),
        bidirectional=True,
    )
    net.settle()
    return net, dataset


class TestControllerLoop:
    def test_loop_reaches_connectivity(self, deployed):
        net, dataset = deployed
        assert net.connectivity_indicator(dataset.domain) < 0
        controller = SelfOrganizationController(
            net, domain=dataset.domain,
            policy=CreationPolicy(mappings_per_round=4),
        )
        reports = controller.run(max_rounds=10)
        assert reports[-1].ci_after >= 0
        assert any(report.created for report in reports)

    def test_connected_round_creates_nothing(self, deployed):
        net, dataset = deployed
        controller = SelfOrganizationController(net, domain=dataset.domain)
        # the previous test left the layer connected
        report = controller.step()
        assert report.ci_before >= 0
        assert report.created == []

    def test_created_mappings_visible_through_overlay(self, deployed):
        net, dataset = deployed
        graph = net.mapping_graph(dataset.domain)
        autos = [m for m in graph.mappings() if m.provenance == "auto"]
        assert autos
        for mapping in autos:
            assert mapping.confidence < 1.0

    def test_round_report_shape(self, deployed):
        net, dataset = deployed
        controller = SelfOrganizationController(net, domain=dataset.domain)
        report = controller.step()
        assert report.schemas_seen == len(dataset.schemas)
        assert set(report.posteriors) >= {
            m.mapping_id
            for m in net.mapping_graph(dataset.domain).mappings()}

    def test_recall_improves_after_loop(self, deployed):
        net, dataset = deployed
        from repro.datagen import QueryWorkloadGenerator
        workload = QueryWorkloadGenerator(dataset, seed=5)
        query = workload.concept_query(dataset.schemas[0].name,
                                       "organism", "Aspergillus")
        local = net.search_for(query, strategy="local")
        reformulated = net.search_for(query, strategy="iterative",
                                      max_hops=8)
        assert reformulated.result_count > local.result_count
