"""Unit tests for the streaming operator runtime (repro.exec)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.bindings import (
    binding_key,
    dedup_bindings,
    hash_join_bindings,
    remap_bindings,
    restore_variables,
)
from repro.exec.operators import Dedup, Limit, Project, Union
from repro.exec.stream import Batch, Operator
from repro.rdf.patterns import (
    ConjunctiveQuery,
    TriplePattern,
    join_bindings,
)
from repro.rdf.terms import Literal, URI, Variable
from repro.reformulation.planner import (
    Reformulation,
    reformulation_waves,
)
from repro.simnet.events import CancelToken, EventLoop

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestBindingHelpers:
    def test_binding_key_order_insensitive(self):
        a = {X: URI("u1"), Y: Literal("v")}
        b = {Y: Literal("v"), X: URI("u1")}
        assert binding_key(a) == binding_key(b)

    def test_binding_key_distinguishes_values(self):
        assert binding_key({X: URI("u1")}) != binding_key({X: URI("u2")})

    def test_dedup_bindings_preserves_order(self):
        rows = [{X: URI("a")}, {X: URI("b")}, {X: URI("a")}]
        assert dedup_bindings(rows) == [{X: URI("a")}, {X: URI("b")}]

    def test_dedup_bindings_shared_seen_set(self):
        seen: set = set()
        first = dedup_bindings([{X: URI("a")}], seen)
        second = dedup_bindings([{X: URI("a")}, {X: URI("b")}], seen)
        assert first == [{X: URI("a")}]
        assert second == [{X: URI("b")}]

    def test_remap_bindings(self):
        canonical = Variable("_c0")
        rows = [{canonical: URI("a")}]
        assert remap_bindings(rows, {canonical: X}) == [{X: URI("a")}]
        assert remap_bindings(rows, {}) is rows

    def test_restore_variables(self):
        pattern = TriplePattern(X, URI("S#len"), Y)
        variant = pattern.substitute({X: URI("S:e1")})
        restored = restore_variables(pattern, variant,
                                     {Y: Literal("120")})
        assert restored == {X: URI("S:e1"), Y: Literal("120")}


class TestHashJoin:
    def test_matches_nested_loop_join(self):
        left = [{X: URI(f"e{i}"), Y: Literal(str(i))} for i in range(6)]
        right = [{X: URI(f"e{i}"), Z: Literal(f"g{i % 2}")}
                 for i in range(0, 12, 2)]
        expected = join_bindings(left, right)
        got = hash_join_bindings(left, right)
        assert sorted(map(binding_key, got)) == \
            sorted(map(binding_key, expected))

    def test_cross_product_when_no_shared_vars(self):
        left = [{X: URI("a")}, {X: URI("b")}]
        right = [{Y: URI("c")}]
        assert len(hash_join_bindings(left, right)) == 2

    def test_empty_left_binding_joins_all(self):
        right = [{X: URI("a")}, {X: URI("b")}]
        assert hash_join_bindings([{}], right) == right

    def test_empty_sides(self):
        assert hash_join_bindings([], [{X: URI("a")}]) == []
        assert hash_join_bindings([{X: URI("a")}], []) == []

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    max_size=12),
           st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    max_size=12))
    def test_equivalence_property(self, left_ints, right_ints):
        left = [{X: URI(f"u{a}"), Y: URI(f"v{b}")}
                for a, b in left_ints]
        right = [{Y: URI(f"v{a}"), Z: URI(f"w{b}")}
                 for a, b in right_ints]
        expected = join_bindings(left, right)
        got = hash_join_bindings(left, right)
        assert sorted(map(binding_key, got)) == \
            sorted(map(binding_key, expected))


def chain(*ops):
    """Wire operators linearly; returns the ops."""
    for upstream, downstream in zip(ops, ops[1:]):
        upstream.connect(downstream)
    return ops


class _Sink(Operator):
    """Test sink remembering everything it received."""

    def __init__(self):
        super().__init__("test-sink")
        self.batches = []
        self.closes = 0

    def on_batch(self, batch, slot):
        self.batches.append((batch.tuples(), batch.source))

    def on_finish(self):
        self.closes += 1


def _ints(*values):
    """A one-column test batch of integer rows."""
    return Batch.from_tuples((X,), [(v,) for v in values])


class TestBatch:
    def test_from_bindings_derives_schema(self):
        batch = Batch.from_bindings([{X: URI("a"), Y: Literal("v")},
                                     {X: URI("b"), Y: Literal("w")}])
        assert batch.schema == (X, Y)
        assert batch.count == 2
        assert batch.tuples() == [(URI("a"), Literal("v")),
                                  (URI("b"), Literal("w"))]
        assert batch.columns() == ([URI("a"), URI("b")],
                                   [Literal("v"), Literal("w")])

    def test_to_bindings_round_trip(self):
        rows = [{X: URI("a"), Y: Literal("v")}]
        assert Batch.from_bindings(rows).to_bindings() == rows

    def test_unit_relation_vs_empty(self):
        unit = Batch((), count=1)
        empty = Batch((), tuples=[])
        assert unit.count == 1 and unit.tuples() == [()]
        assert empty.count == 0 and empty.tuples() == []

    def test_renamed_shares_storage(self):
        batch = Batch.from_bindings([{X: URI("a")}])
        renamed = batch.renamed({X: Z})
        assert renamed.schema == (Z,)
        assert renamed.tuples() is batch.tuples()
        assert batch.renamed({}) is batch


class TestStreamMechanics:
    def test_passthrough_and_close_propagation(self):
        src, sink = chain(Union("src"), _Sink())
        src.emit(_ints(1, 2))
        src.close()
        assert sink.batches == [([(1,), (2,)], None)]
        assert sink.closes == 1 and sink.closed

    def test_multi_input_close_barrier(self):
        a, b, sink = Union("a"), Union("b"), _Sink()
        a.connect(sink)
        b.connect(sink)
        a.close()
        assert not sink.closed
        b.close()
        assert sink.closed

    def test_rows_after_close_are_dropped_and_counted(self):
        a, b, sink = Union("a"), Union("b"), _Sink()
        a.connect(sink)
        sink._input_closed(0)  # force-close via the only input
        b.connect(sink)
        b.emit(_ints(1, 2, 3))
        assert sink.batches == []
        assert sink.stats.rows_dropped == 3

    def test_stats_count_rows(self):
        src, sink = chain(Union("src"), _Sink())
        src.emit(_ints(1, 2, 3))
        assert src.stats.rows_out == 3
        assert sink.stats.rows_in == 3


PATTERN = TriplePattern(X, URI("S#org"), Y)
QUERY = ConjunctiveQuery([PATTERN], [X])


class TestProjectDedupLimit:
    def test_project_slices_columns_and_tags_source(self):
        project, sink = chain(Project(QUERY), _Sink())
        project._receive(Batch.from_bindings(
            [{X: URI("a"), Y: Literal("v")},
             {X: URI("b"), Y: Literal("w")}]), 0)
        rows, source = sink.batches[0]
        assert rows == [(URI("a"),), (URI("b"),)]
        assert source == QUERY

    def test_project_missing_variable_emits_empty(self):
        project, sink = chain(Project(QUERY), _Sink())
        project._receive(Batch.from_bindings([{Y: Literal("w")}]), 0)
        rows, source = sink.batches[0]
        assert rows == []
        assert source == QUERY
        assert project.stats.rows_out == 0
        assert project.stats.batches_out == 1

    def test_dedup_across_batches(self):
        dedup, sink = chain(Dedup(), _Sink())
        dedup._receive(_ints(1, 2, 1), 0)
        dedup._receive(_ints(2, 3), 0)
        assert [rows for rows, _ in sink.batches] == \
            [[(1,), (2,)], [(3,)]]

    def test_limit_truncates_and_fires_once(self):
        fired = []
        limit = Limit(3, on_satisfied=lambda: fired.append(1))
        sink = _Sink()
        limit.connect(sink)
        limit._receive(_ints(1, 2), 0)
        limit._receive(_ints(3, 4, 5), 0)
        limit._receive(_ints(6), 0)
        emitted = [row for rows, _ in sink.batches for row in rows]
        assert emitted == [(1,), (2,), (3,)]
        assert fired == [1]
        assert limit.satisfied
        assert limit.stats.rows_dropped == 3  # 4, 5 truncated + 6 late

    def test_limit_separates_overshoot_from_late_rows(self):
        limit, sink = chain(Limit(2), _Sink())
        limit._receive(_ints(1, 2, 3), 0)     # overshoot: 3 truncated
        assert limit.satisfied
        assert limit.stats.rows_dropped == 1
        assert limit.late_rows == 0           # nothing arrived late yet
        limit._receive(_ints(4, 5), 0)        # true late arrivals
        assert limit.late_rows == 2
        assert limit.stats.rows_dropped == 3

    def test_limit_duplicates_do_not_count(self):
        limit, sink = chain(Limit(2), _Sink())
        limit._receive(_ints(1, 1, 1), 0)
        assert not limit.satisfied
        limit._receive(_ints(2), 0)
        assert limit.satisfied

    def test_limit_none_passes_through(self):
        limit, sink = chain(Limit(None), _Sink())
        limit._receive(_ints(*range(100)), 0)
        assert not limit.satisfied
        assert sink.stats.rows_in == 100


class TestCancelToken:
    def test_cancel_idempotent_and_callbacks(self):
        fired = []
        token = CancelToken()
        token.on_cancel(lambda: fired.append("a"))
        token.cancel()
        token.cancel()
        assert fired == ["a"]
        assert token.cancelled

    def test_late_callback_fires_immediately(self):
        token = CancelToken()
        token.cancel()
        fired = []
        token.on_cancel(lambda: fired.append("late"))
        assert fired == ["late"]

    def test_link_cancels_scheduled_event(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, fired.append, "boom")
        token = CancelToken()
        token.link(handle)
        token.cancel()
        loop.run_until_idle()
        assert fired == []


def _reformulation(hops):
    query = ConjunctiveQuery(
        [TriplePattern(X, URI(f"S{hops}#p"), Y)], [X])
    return Reformulation(query, tuple([None] * hops))  # type: ignore[list-item]


class TestReformulationWaves:
    def test_groups_by_hops(self):
        plan = [_reformulation(0), _reformulation(1),
                _reformulation(1), _reformulation(2)]
        waves = reformulation_waves(plan)
        assert [len(w) for w in waves] == [1, 2, 1]
        assert all(r.hops == i for i, wave in enumerate(waves)
                   for r in wave)

    def test_empty_plan(self):
        assert reformulation_waves([]) == []


class TestPeerSearchForValidation:
    def test_unknown_strategy_raises_synchronously(self, small_network):
        net = small_network
        peer = net.peer(net.peer_ids()[0])
        with pytest.raises(ValueError):
            peer.search_for(
                ConjunctiveQuery([TriplePattern(X, URI("S#p"),
                                                Literal("%v%"))], [X]),
                strategy="telepathic")
