"""Execute every doctest in the library's docstrings.

Docstring examples are part of the public documentation; running them
keeps them truthful as the code evolves.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failure(s)"
