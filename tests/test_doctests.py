"""Execute every doctest in the library's docstrings.

Docstring examples are part of the public documentation; running them
keeps them truthful as the code evolves.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failure(s)"


def test_stats_and_optimizer_packages_discovered():
    """The statistics/optimizer modules must stay on the doctest walk
    (a missing ``__init__`` or rename would silently drop them)."""
    modules = _all_modules()
    for name in (
        "repro.stats.synopsis",
        "repro.stats.estimator",
        "repro.stats.gossip",
        "repro.optimizer.core",
        "repro.optimizer.cost",
    ):
        assert name in modules
