"""Property and unit tests for the statistics subsystem.

The synopsis registry is a state-based CRDT: whatever order gossip
delivers digests in, every peer must converge to the same registry.
The Hypothesis properties pin down exactly that (commutative,
idempotent, associative merge) plus the builder's insert/delete
inverse, and the unit tests cover the cardinality estimator's
sketch arithmetic.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import URI, Literal, Variable
from repro.stats.estimator import CardinalityEstimator
from repro.stats.synopsis import (
    PeerSynopsis,
    PredicateDigest,
    StoreSynopsis,
    SynopsisRegistry,
)
from strategies import STANDARD_SETTINGS, peer_synopses, triples


def _registry_with(digests):
    registry = SynopsisRegistry()
    registry.merge(digests)
    return registry


class TestRegistryMergeProperties:
    @given(xs=st.lists(peer_synopses, max_size=8),
           ys=st.lists(peer_synopses, max_size=8))
    @STANDARD_SETTINGS
    def test_merge_commutative(self, xs, ys):
        assert (_registry_with(xs + ys).digests()
                == _registry_with(ys + xs).digests())

    @given(xs=st.lists(peer_synopses, max_size=8))
    @STANDARD_SETTINGS
    def test_merge_idempotent(self, xs):
        once = _registry_with(xs)
        twice = _registry_with(xs)
        twice.merge(xs)
        assert once.digests() == twice.digests()

    @given(xs=st.lists(peer_synopses, max_size=5),
           ys=st.lists(peer_synopses, max_size=5),
           zs=st.lists(peer_synopses, max_size=5))
    @STANDARD_SETTINGS
    def test_merge_associative(self, xs, ys, zs):
        left = _registry_with(xs + ys)
        left.merge(zs)
        right_inner = _registry_with(ys + zs)
        right = _registry_with(xs)
        right.merge(right_inner.digests())
        assert left.digests() == right.digests()

    @given(digest=peer_synopses)
    @STANDARD_SETTINGS
    def test_newer_version_wins(self, digest):
        registry = SynopsisRegistry()
        registry.register(digest)
        newer = PeerSynopsis(
            peer_id=digest.peer_id, version=digest.version + 1,
            triples=digest.triples + 1,
        )
        assert registry.register(newer)
        assert registry.get(digest.peer_id) == newer
        # the stale digest can never regress the registry
        assert not registry.register(digest)
        assert registry.get(digest.peer_id) == newer


class TestStoreSynopsisInverse:
    @given(ts=st.lists(triples, max_size=12), extra=triples)
    @STANDARD_SETTINGS
    def test_insert_delete_inverse(self, ts, extra):
        synopsis = StoreSynopsis()
        for t in ts:
            synopsis.add(t)
        before = synopsis.digest("n0", version=0)
        synopsis.add(extra)
        synopsis.remove(extra)
        assert synopsis.digest("n0", version=0) == before

    @given(ts=st.lists(triples, max_size=12))
    @STANDARD_SETTINGS
    def test_digest_matches_recount(self, ts):
        synopsis = StoreSynopsis()
        for t in ts:
            synopsis.add(t)
        digest = synopsis.digest("n0", version=0)
        by_predicate = {}
        for t in ts:
            by_predicate.setdefault(t.predicate.value, []).append(t)
        assert len(digest.predicates) == len(by_predicate)
        for entry in digest.predicates:
            bucket = by_predicate[entry.predicate]
            assert entry.triples == len(bucket)
            assert entry.distinct_subjects == len(
                {t.subject.value for t in bucket})
            assert entry.distinct_objects == len(
                {t.object.value for t in bucket})

    def test_version_monotone(self):
        from repro.rdf.triples import Triple

        synopsis = StoreSynopsis()
        t = Triple(URI("a"), URI("S#p"), Literal("v"))
        v0 = synopsis.version
        synopsis.add(t)
        v1 = synopsis.version
        synopsis.remove(t)
        assert v0 < v1 < synopsis.version


def _estimator(*digests):
    return CardinalityEstimator(_registry_with(list(digests)))


def _digest(peer_id, version, *predicate_entries, path=""):
    return PeerSynopsis(peer_id=peer_id, version=version,
                        triples=sum(e.triples for e in predicate_entries),
                        predicates=tuple(predicate_entries),
                        path=path)


HOT_PREDICATE = _digest("n1", 1, PredicateDigest(
    predicate="S#p", triples=100, distinct_subjects=10,
    distinct_objects=4, top_objects=(("hot", 70), ("warm", 20)),
), path="0")

#: an empty peer covering the other half of the key space — together
#: with HOT_PREDICATE's "0" the digests cover everything, which is
#: what authorizes absence-means-empty estimates
OTHER_HALF = _digest("n9", 1, path="1")


class TestCardinalityEstimator:
    def test_empty_registry_estimates_nothing(self):
        estimator = _estimator()
        pattern = TriplePattern(Variable("x"), URI("S#p"), Variable("y"))
        assert estimator.pattern_cardinality(pattern) is None

    def test_unknown_predicate_is_zero_under_full_coverage(self):
        estimator = _estimator(HOT_PREDICATE, OTHER_HALF)
        assert estimator.full_coverage()
        pattern = TriplePattern(Variable("x"), URI("S#nope"),
                                Variable("y"))
        assert estimator.pattern_cardinality(pattern) == 0.0

    def test_unknown_predicate_is_unknown_under_partial_coverage(self):
        estimator = _estimator(HOT_PREDICATE)  # only path "0" known
        assert not estimator.full_coverage()
        pattern = TriplePattern(Variable("x"), URI("S#nope"),
                                Variable("y"))
        # the predicate might live on an un-gossiped peer: no verdict
        assert estimator.pattern_cardinality(pattern) is None

    def test_sketched_object_value(self):
        estimator = _estimator(HOT_PREDICATE)
        pattern = TriplePattern(Variable("x"), URI("S#p"), Literal("hot"))
        assert estimator.pattern_cardinality(pattern) == 70.0

    def test_residual_object_value(self):
        estimator = _estimator(HOT_PREDICATE)
        pattern = TriplePattern(Variable("x"), URI("S#p"),
                                Literal("other"))
        # residual mass 10 spread over 2 unsketched distinct values
        assert estimator.pattern_cardinality(pattern) == 5.0

    def test_subject_constant_divides_by_distinct_subjects(self):
        estimator = _estimator(HOT_PREDICATE)
        pattern = TriplePattern(URI("S:e1"), URI("S#p"), Variable("y"))
        assert estimator.pattern_cardinality(pattern) == 10.0

    def test_like_literal_uses_sketch_plus_residual(self):
        estimator = _estimator(HOT_PREDICATE)
        pattern = TriplePattern(Variable("x"), URI("S#p"),
                                Literal("%ot%"))
        # "hot" matches the sketch (70); residual 10 at 0.5 selectivity
        assert estimator.pattern_cardinality(pattern) == 75.0

    def test_cross_peer_aggregation_is_max_not_sum(self):
        replica = _digest("n2", 1, PredicateDigest(
            predicate="S#p", triples=100, distinct_subjects=10,
            distinct_objects=4, top_objects=(("hot", 70), ("warm", 20)),
        ))
        partial = _digest("n3", 1, PredicateDigest(
            predicate="S#p", triples=30, distinct_subjects=5,
            distinct_objects=2, top_objects=(("hot", 25),),
        ))
        estimator = _estimator(HOT_PREDICATE, replica, partial)
        pattern = TriplePattern(Variable("x"), URI("S#p"), Variable("y"))
        # replication must not inflate the estimate
        assert estimator.pattern_cardinality(pattern) == 100.0

    def test_query_cardinality_is_most_selective_pattern(self):
        estimator = _estimator(HOT_PREDICATE)
        from repro.rdf.patterns import ConjunctiveQuery

        x = Variable("x")
        query = ConjunctiveQuery(
            [TriplePattern(x, URI("S#p"), Literal("hot")),
             TriplePattern(x, URI("S#p"), Literal("other"))],
            [x],
        )
        assert estimator.query_cardinality(query) == 5.0
