"""Tests for view unfolding (query translation through mappings)."""

from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
    SchemaMapping,
)
from repro.mapping.unfolding import (
    query_schemas,
    translate_pattern,
    translate_query,
)
from repro.rdf.parser import parse_search_for
from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import Literal, URI, Variable

X = Variable("x")

EMBL_TO_EMP = SchemaMapping(
    "m", "EMBL", "EMP",
    [PredicateCorrespondence(URI("EMBL#Organism"),
                             URI("EMP#SystematicName"))],
)


class TestTranslatePattern:
    def test_figure2_rewrite(self):
        pattern = TriplePattern(X, URI("EMBL#Organism"),
                                Literal("%Aspergillus%"))
        out = translate_pattern(pattern, EMBL_TO_EMP)
        assert out == TriplePattern(X, URI("EMP#SystematicName"),
                                    Literal("%Aspergillus%"))

    def test_foreign_schema_passes_through(self):
        pattern = TriplePattern(X, URI("Other#p"), Literal("v"))
        assert translate_pattern(pattern, EMBL_TO_EMP) == pattern

    def test_unmapped_source_predicate_fails(self):
        pattern = TriplePattern(X, URI("EMBL#SeqLength"), Literal("9"))
        assert translate_pattern(pattern, EMBL_TO_EMP) is None

    def test_variable_predicate_fails(self):
        pattern = TriplePattern(X, Variable("p"), Literal("v"))
        assert translate_pattern(pattern, EMBL_TO_EMP) is None


class TestTranslateQuery:
    def test_figure2_query(self):
        q = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))")
        out = translate_query(q, EMBL_TO_EMP)
        assert out == parse_search_for(
            "SearchFor(x? : (x?, EMP#SystematicName, %Aspergillus%))")

    def test_deprecated_mapping_refused(self):
        q = parse_search_for("SearchFor(x? : (x?, EMBL#Organism, %A%))")
        assert translate_query(q, EMBL_TO_EMP.with_deprecated(True)) is None

    def test_no_op_translation_rejected(self):
        q = parse_search_for("SearchFor(x? : (x?, Other#p, %A%))")
        assert translate_query(q, EMBL_TO_EMP) is None

    def test_partial_translation_rejected(self):
        # One pattern maps, the other (same schema) does not: refuse.
        q = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %A%) "
            "AND (x?, EMBL#SeqLength, y?))")
        assert translate_query(q, EMBL_TO_EMP) is None

    def test_multi_schema_query_translates_relevant_patterns(self):
        q = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %A%) "
            "AND (x?, Other#p, y?))")
        out = translate_query(q, EMBL_TO_EMP)
        assert out is not None
        assert out.patterns[0].predicate == URI("EMP#SystematicName")
        assert out.patterns[1].predicate == URI("Other#p")

    def test_distinguished_variables_preserved(self):
        q = parse_search_for(
            "SearchFor(x?, y? : (x?, EMBL#Organism, y?))")
        out = translate_query(q, EMBL_TO_EMP)
        assert out.distinguished == q.distinguished

    def test_subsumption_translates_forward_only(self):
        mapping = SchemaMapping(
            "sub", "EMBL", "EMP",
            [PredicateCorrespondence(URI("EMBL#Organism"),
                                     URI("EMP#SystematicName"),
                                     kind=MappingKind.SUBSUMPTION)],
        )
        q = parse_search_for("SearchFor(x? : (x?, EMBL#Organism, %A%))")
        assert translate_query(q, mapping) is not None


class TestQuerySchemas:
    def test_single(self):
        q = parse_search_for("SearchFor(x? : (x?, EMBL#Organism, %A%))")
        assert query_schemas(q) == {"EMBL"}

    def test_multiple(self):
        q = parse_search_for(
            "SearchFor(x? : (x?, A#p, %v%) AND (x?, B#q, y?))")
        assert query_schemas(q) == {"A", "B"}
