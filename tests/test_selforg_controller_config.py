"""Tests for controller configuration paths and creator edge cases."""

import pytest

from repro.mapping.graph import MappingGraph
from repro.mediation.network import GridVineNetwork
from repro.selforg.controller import SelfOrganizationController
from repro.selforg.creator import CreationPolicy, propose_mappings


@pytest.fixture(scope="module")
def hinted_deployment():
    from repro.datagen import BioDatasetGenerator
    dataset = BioDatasetGenerator(
        num_schemas=6, num_entities=60, entities_per_schema=20, seed=31,
    ).generate()
    net = GridVineNetwork.build(num_peers=24, seed=31)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    names = [s.name for s in dataset.schemas]
    net.insert_mapping(dataset.ground_truth_mapping(names[0], names[1]))
    net.settle()
    return net, dataset


class TestReferenceHint:
    def test_hint_restricts_reference_values(self, hinted_deployment):
        net, dataset = hinted_deployment
        unrestricted = SelfOrganizationController(net, domain=dataset.domain)
        hinted = SelfOrganizationController(
            net, domain=dataset.domain,
            # every generated schema realizes 'accession' through a
            # synonym containing "acc" (case-insensitive)
            reference_attribute_hint="acc",
        )
        schemas = unrestricted._fetch_schemas()
        _vals_u, refs_u = unrestricted._collect_instance_state(schemas)
        _vals_h, refs_h = hinted._collect_instance_state(schemas)
        for name in refs_h:
            assert refs_h[name] <= refs_u[name]
        # at least one schema has strictly fewer references when only
        # accession-like attributes count
        assert any(len(refs_h[n]) < len(refs_u[n]) for n in refs_h)

    def test_hinted_controller_still_connects(self, hinted_deployment):
        net, dataset = hinted_deployment
        controller = SelfOrganizationController(
            net, domain=dataset.domain,
            policy=CreationPolicy(mappings_per_round=4),
            reference_attribute_hint="acc",
        )
        reports = controller.run(max_rounds=8)
        assert reports[-1].ci_after >= 0


class TestProposeMappingsEdges:
    def test_no_candidates_proposes_nothing(self):
        proposals = propose_mappings(
            schemas={}, value_sets={}, references={},
            graph=MappingGraph(),
        )
        assert proposals == []

    def test_unknown_schema_in_references_skipped(self, bio_dataset):
        ds = bio_dataset
        a, b = ds.schemas[0].name, ds.schemas[1].name
        proposals = propose_mappings(
            schemas={a: ds.schema(a)},  # b's definition missing
            value_sets={a: {}, b: {}},
            references={a: {"shared"}, b: {"shared"}},
            graph=MappingGraph(),
        )
        assert proposals == []

    def test_min_correspondences_filters_weak_pairs(self, bio_dataset):
        ds = bio_dataset
        a, b = ds.schemas[0].name, ds.schemas[1].name

        def values(name):
            sets: dict = {attr: set() for attr in ds.schema(name).attributes}
            for t in ds.triples_by_schema[name]:
                sets[t.predicate.local_name].add(t.object.value)
            return sets

        strict = CreationPolicy(min_correspondences=99)
        proposals = propose_mappings(
            schemas={a: ds.schema(a), b: ds.schema(b)},
            value_sets={a: values(a), b: values(b)},
            references={a: {"r"}, b: {"r"}},
            graph=MappingGraph(),
            policy=strict,
        )
        assert proposals == []

    def test_proposal_ids_use_prefix(self, bio_dataset):
        ds = bio_dataset
        a, b = ds.schemas[0].name, ds.schemas[1].name

        def values(name):
            sets: dict = {attr: set() for attr in ds.schema(name).attributes}
            for t in ds.triples_by_schema[name]:
                sets[t.predicate.local_name].add(t.object.value)
            return sets

        proposals = propose_mappings(
            schemas={a: ds.schema(a), b: ds.schema(b)},
            value_sets={a: values(a), b: values(b)},
            references={a: {"r"}, b: {"r"}},
            graph=MappingGraph(),
            id_prefix="auto:r7",
        )
        assert proposals
        assert all(m.mapping_id.startswith("auto:r7:") for m in proposals)
        assert all(m.provenance == "auto" for m in proposals)

    def test_round_budget_respected(self, bio_dataset):
        ds = bio_dataset
        names = [s.name for s in ds.schemas]

        def values(name):
            sets: dict = {attr: set() for attr in ds.schema(name).attributes}
            for t in ds.triples_by_schema[name]:
                sets[t.predicate.local_name].add(t.object.value)
            return sets

        proposals = propose_mappings(
            schemas={n: ds.schema(n) for n in names},
            value_sets={n: values(n) for n in names},
            references={n: {"r"} for n in names},
            graph=MappingGraph(),
            policy=CreationPolicy(mappings_per_round=2),
        )
        assert len(proposals) <= 2
