"""Pin `InProcessTransport` to pre-refactor observables, bit-identically.

The golden file was captured on the commit immediately before the
actor/transport refactor (see ``golden_observables.py``).  These tests
re-run the same E13-E16-style workloads — plan-cache batches, churn
recall with failover on/off, limit pushdown, cost-based auto strategy,
the canonical end-to-end run, and a faulted ``ScenarioRunner`` replay
from one integer seed — and demand exact equality: same message counts,
same virtual timestamps, same rows, same drop reasons.

A failure here means the refactor changed simulation behavior, not just
structure.  Do not regenerate the golden file to make a failure pass
unless the behavior change is intentional and called out in CHANGES.md.
"""

import json

import pytest

from golden_observables import (
    GOLDEN_PATH,
    _e13_plan_cache,
    _e14_churn_recall,
    _e15_limit_pushdown,
    _e16_auto_strategy,
    _end_to_end,
    _faulted_replay,
    _round_floats,
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _check(golden, section, collect):
    observed = json.loads(json.dumps(_round_floats(collect())))
    assert observed == golden[section]


class TestInProcessTransportGolden:
    def test_end_to_end_bit_identical(self, golden):
        _check(golden, "end_to_end", _end_to_end)

    def test_e13_plan_cache_bit_identical(self, golden):
        _check(golden, "e13_plan_cache", _e13_plan_cache)

    def test_e14_churn_recall_bit_identical(self, golden):
        _check(golden, "e14_churn_recall", _e14_churn_recall)

    def test_e15_limit_pushdown_bit_identical(self, golden):
        _check(golden, "e15_limit_pushdown", _e15_limit_pushdown)

    def test_e16_auto_strategy_bit_identical(self, golden):
        _check(golden, "e16_auto_strategy", _e16_auto_strategy)

    def test_faulted_seed_replay_bit_identical(self, golden):
        _check(golden, "faulted_replay", _faulted_replay)
