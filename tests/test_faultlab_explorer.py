"""Tests for the scenario explorer: seed replay, verdicts, shrinking.

The explorer's contract is FoundationDB-flavoured: a printed seed is a
complete reproducer, and a failing schedule shrinks to a strictly
smaller one that still fails.  Small specs keep each trial under a
second; everything is deterministic, no flake budget needed.
"""

from dataclasses import asdict, replace

import pytest

from repro.faultlab import (
    FaultPlan,
    MessageDrop,
    ScenarioExplorer,
    generate_plan,
    replay,
)
from repro.faultlab.explorer import default_spec, spec_horizon
from repro.faultlab.plan import CrashRestart


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        nodes = [f"peer-{i}" for i in range(16)]
        a = generate_plan(7, nodes, 300.0, intensity="heavy")
        b = generate_plan(7, nodes, 300.0, intensity="heavy")
        assert a == b

    def test_different_seeds_differ(self):
        nodes = [f"peer-{i}" for i in range(16)]
        plans = {generate_plan(s, nodes, 300.0) for s in range(6)}
        assert len(plans) > 1

    def test_protected_nodes_never_crash(self):
        nodes = [f"peer-{i}" for i in range(8)]
        for seed in range(24):
            plan = generate_plan(seed, nodes, 300.0, intensity="heavy",
                                 protected=("peer-0",))
            for clause in plan.faults:
                if isinstance(clause, CrashRestart):
                    assert clause.node != "peer-0"

    def test_extreme_always_includes_reply_killer(self):
        nodes = [f"peer-{i}" for i in range(8)]
        plan = generate_plan(0, nodes, 300.0, intensity="extreme")
        killers = [c for c in plan.faults
                   if isinstance(c, MessageDrop)
                   and c.kinds == ("reply",) and c.probability == 1.0]
        assert len(killers) == 1

    def test_unknown_intensity_rejected(self):
        with pytest.raises(ValueError):
            generate_plan(0, ["n0"], 100.0, intensity="apocalyptic")
        with pytest.raises(ValueError):
            ScenarioExplorer(intensity="apocalyptic")


class TestSeedReplay:
    def test_trial_reproducible_from_seed_alone(self):
        """The acceptance contract: a printed seed rebuilds the
        deployment, schedule and verdict bit-for-bit."""
        explorer = ScenarioExplorer(intensity="heavy")
        a = explorer.run_trial(5)
        b = replay(5, intensity="heavy")
        assert a.plan == b.plan
        assert asdict(a.report) == asdict(b.report)
        assert [str(v) for v in a.invariants.violations] == \
            [str(v) for v in b.invariants.violations]

    def test_explore_runs_consecutive_seeds(self):
        explorer = ScenarioExplorer(intensity="light")
        trials = explorer.explore(3, start_seed=10)
        assert [t.seed for t in trials] == [10, 11, 12]
        for trial in trials:
            assert trial.report.queries_issued == \
                explorer.spec.num_queries
            assert trial.summary()  # printable

    def test_faulted_run_reports_injections(self):
        explorer = ScenarioExplorer(intensity="heavy")
        trial = explorer.run_trial(2)
        assert trial.report.faults_injected  # something fired
        assert sum(trial.report.faults_injected.values()) > 0


class TestShrinking:
    def test_shrink_emits_strictly_smaller_still_failing_schedule(self):
        explorer = ScenarioExplorer(intensity="extreme",
                                    min_live_recall=0.8)
        original = explorer.plan_for_seed(0)
        failing = explorer.run_trial(0)
        assert not failing.ok
        result = explorer.shrink(0)
        assert len(result.shrunk) < len(result.original)
        assert result.original == original
        # the minimal reproducer still fails on its own
        rerun = explorer.run_trial(0, plan=result.shrunk)
        assert not rerun.ok
        assert set(result.failed_invariants) & \
            set(rerun.invariants.failed_invariants())
        # and it is locally minimal: dropping any remaining clause
        # loses the failure
        for index in range(len(result.shrunk)):
            attempt = explorer.run_trial(
                0, plan=result.shrunk.without(index))
            assert not (set(result.failed_invariants)
                        & set(attempt.invariants.failed_invariants()))

    def test_shrink_detects_fault_independent_failure(self):
        """A failure that persists with zero faults (here: an
        unsatisfiable recall floor) must shrink to the empty plan and
        say so, not finger an arbitrary surviving clause."""
        explorer = ScenarioExplorer(intensity="light", min_recall=1.01)
        result = explorer.shrink(0)
        assert len(result.shrunk) == 0
        assert any("fault-independent" in line
                   for line in result.summary())

    def test_shrink_reuses_precomputed_trial(self):
        explorer = ScenarioExplorer(intensity="extreme",
                                    min_live_recall=0.8)
        trial = explorer.run_trial(0)
        result = explorer.shrink(0, trial=trial)
        assert len(result.shrunk) < len(result.original)
        # the reproduction run was skipped: only deletion attempts
        assert result.trials == 8

    def test_shrink_refuses_passing_seed(self):
        explorer = ScenarioExplorer(intensity="light")
        with pytest.raises(ValueError):
            explorer.shrink(0)

    def test_shrink_summary_prints_reproducer(self):
        explorer = ScenarioExplorer(intensity="extreme",
                                    min_live_recall=0.8)
        result = explorer.shrink(0)
        text = "\n".join(result.summary())
        assert "minimal reproducer" in text
        assert "live_recall" in text


class TestStabilizedInvariants:
    def test_light_budget_is_green(self):
        """The CI chaos-smoke contract: the fixed light budget keeps
        every invariant green (deterministic, so green here means
        green in CI)."""
        explorer = ScenarioExplorer(intensity="light")
        for trial in explorer.explore(4):
            assert trial.ok, "\n".join(trial.invariants.summary())

    def test_partition_heavy_seed_recovers_after_heal(self):
        """A partition that wrecks live recall must still leave a
        repairable network: the post-heal eventual invariants hold
        even when the under-faults floor was violated."""
        explorer = ScenarioExplorer(intensity="extreme",
                                    min_live_recall=0.8)
        trial = explorer.run_trial(0)
        assert trial.invariants.failed_invariants() == ["live_recall"]

    def test_engine_strategy_trial_audits_the_workload_engine(self):
        """An ``"engine"`` workload's own plan cache — the one that
        lived through the faults and mapping events — reaches the
        cache-coherence checker populated; other strategies have no
        engine cache and the check is skipped by design."""
        from unittest import mock

        from repro.faultlab import invariants as inv

        captured = {}
        original = inv.check_engine_cache

        def spy(ctx):
            captured["engine"] = ctx.engine
            return original(ctx)

        explorer = ScenarioExplorer(
            spec=replace(default_spec(), strategy="engine",
                         num_queries=3),
            intensity="light")
        with mock.patch.dict(inv.INVARIANTS, {"engine_cache": spy}):
            trial = explorer.run_trial(1)
        assert trial.ok
        assert captured["engine"] is not None
        assert len(captured["engine"].cache) > 0

        explorer = ScenarioExplorer(intensity="light")
        with mock.patch.dict(inv.INVARIANTS, {"engine_cache": spy}):
            trial = explorer.run_trial(0)
        assert trial.ok
        assert captured["engine"] is None  # no engine workload ran

    def test_explicit_fault_plan_override(self):
        explorer = ScenarioExplorer(intensity="light",
                                    min_live_recall=0.8)
        plan = FaultPlan(seed=0, faults=(
            MessageDrop(kinds=("reply",), probability=1.0),
        ))
        trial = explorer.run_trial(0, plan=plan)
        assert not trial.ok
        assert "live_recall" in trial.invariants.failed_invariants()


class TestSpecPlumbing:
    def test_default_spec_horizon(self):
        spec = default_spec()
        assert spec_horizon(spec) == spec.warmup + \
            spec.num_queries * spec.query_interval

    def test_spec_faults_default_is_inert(self):
        """ScenarioSpec.faults=None keeps reports identical to a spec
        predating the fault lab (bit-identical no-fault path)."""
        from repro.resilience import ScenarioRunner
        spec = replace(default_spec(), churn=True, num_queries=3)
        a = ScenarioRunner.from_spec(spec).run()
        b = ScenarioRunner.from_spec(replace(spec, faults=None)).run()
        assert asdict(a) == asdict(b)
        assert a.faults_injected == {}
