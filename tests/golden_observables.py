"""Golden observable capture for the transport-refactor regression pins.

The actor/transport refactor (PR 7) promises that ``InProcessTransport``
reproduces the pre-refactor event-loop behavior *bit-identically*.  The
observables pinned here were captured on the commit immediately before
the refactor and stored in ``tests/golden/transport_golden.json``; the
companion test (``test_transport_golden.py``) re-runs the same small
E13-E16-style workloads on the refactored code and compares exactly.

Regenerate (only when an intentional behavior change is being made)::

    PYTHONPATH=src:tests python tests/golden_observables.py --write
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import asdict

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "transport_golden.json"


def _round_floats(obj, places: int = 9):
    """Round every float so JSON round-tripping is exact."""
    if isinstance(obj, float):
        return round(obj, places)
    if isinstance(obj, dict):
        return {k: _round_floats(v, places) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_round_floats(v, places) for v in obj]
    return obj


def _corpus_net(seed: int, num_peers: int = 24):
    from repro.datagen import BioDatasetGenerator
    from repro.mediation.network import GridVineNetwork

    dataset = BioDatasetGenerator(
        num_schemas=4, num_entities=40, entities_per_schema=10,
        seed=seed).generate()
    net = GridVineNetwork.build(num_peers=num_peers, seed=seed,
                                replication=2)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    names = [s.name for s in dataset.schemas]
    for a, b in zip(names, names[1:]):
        net.insert_mapping(dataset.ground_truth_mapping(a, b),
                           bidirectional=True)
    net.settle()
    return net, dataset


def _e13_plan_cache() -> dict:
    """E13-style: engine batch execution, cold round then warm round."""
    from repro.datagen import QueryWorkloadGenerator

    net, dataset = _corpus_net(13)
    engine = net.create_engine(domain=dataset.domain, max_hops=6)
    workload = QueryWorkloadGenerator(dataset, seed=3)
    batch = workload.queries(5) * 2
    rounds = []
    for _round in range(2):
        result = engine.execute_batch(batch, origin=net.peer_ids()[0])
        rounds.append({
            "result_counts": [o.result_count for o in result.outcomes],
            "rows": [sorted(map(str, o.sorted_results()))
                     for o in result.outcomes],
            "patterns_total": result.patterns_total,
            "patterns_fetched": result.patterns_fetched,
            "messages": result.messages,
        })
    return {"rounds": rounds, "stats": engine.stats.snapshot()}


def _e14_churn_recall() -> dict:
    """E14-style: churn recall scenario, failover on and off."""
    from repro.resilience import ScenarioRunner, ScenarioSpec

    out = {}
    for failover in (True, False):
        spec = ScenarioSpec(
            num_peers=20, replication=2, refs_per_level=2, seed=31,
            failover=failover, num_schemas=3, num_entities=24,
            num_queries=4, warmup=30.0, query_interval=20.0,
            mean_uptime=90.0, mean_downtime=30.0,
        )
        out[f"failover_{failover}"] = asdict(ScenarioRunner.from_spec(spec).run())
    return out


def _e15_limit_pushdown() -> dict:
    """E15-style: limit pushdown saves messages on a broad query."""
    net, dataset = _corpus_net(15)
    query = (f"SearchFor(x?, v? : "
             f"(x?, {dataset.schemas[0].name}#"
             f"{dataset.schemas[0].attributes[0]}, v?))")
    origin = net.peer_ids()[1]
    out = {}
    for tag, limit in (("full", None), ("limit3", 3)):
        outcome = net.search_for(query, strategy="iterative",
                                 origin=origin, limit=limit)
        out[tag] = {
            "result_count": outcome.result_count,
            "messages": outcome.messages,
            "latency": round(outcome.latency, 9),
        }
    return out


def _e16_auto_strategy() -> dict:
    """E16-style: cost-based auto strategy decisions on the corpus."""
    from repro.datagen import QueryWorkloadGenerator
    from repro.pgrid.maintenance import MaintenanceProcess

    net, dataset = _corpus_net(21)
    maintenance = MaintenanceProcess(net.peers, interval=20.0,
                                     rng=random.Random(9))
    maintenance.start()
    net.loop.run_until(net.loop.now + 400.0)
    maintenance.stop()
    net.loop.run_until(net.loop.now + 60.0)
    workload = QueryWorkloadGenerator(dataset, seed=5)
    observations = []
    for query in workload.queries(6):
        out = net.search_for(query, strategy="auto", max_hops=6,
                             origin=net.peer_ids()[0])
        decision = out.decision
        observations.append([
            out.result_count,
            round(out.latency, 9),
            out.messages,
            None if decision is None else [
                decision.strategy, decision.fallback,
                decision.reformulations_pruned],
        ])
    return {"observations": observations,
            "metrics": net.metrics_snapshot()}


def _faulted_replay() -> dict:
    """Faultlab seed replay: a faulted scenario from one integer seed."""
    from repro.faultlab import FaultPlan, MessageDelay, MessageDrop, Partition
    from repro.resilience import ScenarioRunner, ScenarioSpec

    peers = [f"peer-{i}" for i in range(20)]
    plan = FaultPlan(seed=31, faults=(
        MessageDrop(probability=0.1, start=10.0, until=60.0),
        MessageDelay(probability=0.2, jitter_min=1.0, jitter_max=8.0),
        Partition(side_a=tuple(peers[:14]), side_b=tuple(peers[14:]),
                  start=40.0, heal_at=80.0),
    ))
    spec = ScenarioSpec(
        num_peers=20, replication=2, refs_per_level=2, seed=31,
        num_schemas=3, num_entities=24, num_queries=4, warmup=30.0,
        query_interval=20.0, mean_uptime=90.0, mean_downtime=30.0,
        faults=plan,
    )
    return asdict(ScenarioRunner.from_spec(spec).run())


def _end_to_end() -> dict:
    """The canonical 24-peer end-to-end run (WAN latency model)."""
    from repro.mediation.network import GridVineNetwork
    from repro.rdf.terms import Literal, URI
    from repro.rdf.triples import Triple
    from repro.schema.model import Schema
    from repro.simnet.latency import LogNormalWANLatency

    net = GridVineNetwork.build(num_peers=24, seed=7, replication=2,
                                latency=LogNormalWANLatency())
    embl = Schema("EMBL", ["Organism"], domain="d")
    emp = Schema("EMP", ["SystematicName"], domain="d")
    net.insert_schema(embl)
    net.insert_schema(emp)
    net.insert_triples([
        Triple(URI(f"EMBL:{i}"), URI("EMBL#Organism"),
               Literal(f"Aspergillus {i}"))
        for i in range(10)
    ] + [
        Triple(URI("EMP:9"), URI("EMP#SystematicName"),
               Literal("Aspergillus 9")),
    ])
    net.create_mapping(embl, emp, [("Organism", "SystematicName")],
                       origin=net.peer_ids()[0])
    net.settle()
    outcomes = []
    for strategy in ("local", "iterative", "recursive"):
        out = net.search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))",
            strategy=strategy, origin=net.peer_ids()[1])
        outcomes.append([strategy, out.result_count,
                         round(out.latency, 9), out.messages])
    return {
        "paths": sorted([n, p.path.bits] for n, p in net.peers.items()),
        "loads": sorted(p.storage_load() for p in net.peers.values()),
        "outcomes": outcomes,
        "metrics": net.metrics_snapshot(),
        "now": round(net.loop.now, 9),
    }


def collect_observables() -> dict:
    """Run every pinned workload; returns a JSON-round-trip-safe dict."""
    obs = {
        "end_to_end": _end_to_end(),
        "e13_plan_cache": _e13_plan_cache(),
        "e14_churn_recall": _e14_churn_recall(),
        "e15_limit_pushdown": _e15_limit_pushdown(),
        "e16_auto_strategy": _e16_auto_strategy(),
        "faulted_replay": _faulted_replay(),
    }
    # Round-trip through JSON so tuples/lists and float representations
    # compare equal against the stored golden file.
    return json.loads(json.dumps(_round_floats(obs)))


def main() -> None:
    import sys
    obs = collect_observables()
    if "--write" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(obs, indent=1, sort_keys=True) + "\n")
        print(f"wrote {GOLDEN_PATH}")
    else:
        golden = json.loads(GOLDEN_PATH.read_text())
        print("match" if golden == obs else "MISMATCH")


if __name__ == "__main__":
    main()
