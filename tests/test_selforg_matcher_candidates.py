"""Tests for the automatic matcher and candidate-pair selection."""

import pytest

from repro.mapping.graph import MappingGraph
from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
    SchemaMapping,
)
from repro.rdf.terms import URI
from repro.schema.model import Schema
from repro.selforg.candidates import (
    rank_candidate_pairs,
    shared_reference_count,
)
from repro.selforg.matcher import (
    MatcherConfig,
    lexical_similarity,
    match_attributes,
    score_pair,
)


class TestScorePair:
    config = MatcherConfig()

    def test_identical_names_and_values(self):
        vals = {"a", "b", "c"}
        assert score_pair("Organism", "Organism", vals, vals,
                          self.config) == pytest.approx(1.0)

    def test_lexical_only_when_values_sparse(self):
        s = score_pair("Organism", "OrganismName", {"x"}, set(),
                       self.config)
        assert s == pytest.approx(
            lexical_similarity("Organism", "OrganismName"))

    def test_strong_extensional_overrides_weak_lexical(self):
        organisms = {f"species-{i}" for i in range(20)}
        s = score_pair("OS", "SystematicName", organisms, organisms,
                       self.config)
        assert s >= self.config.strong_extensional

    def test_weak_both_scores_low(self):
        s = score_pair("Length", "LocusName",
                       {str(i) for i in range(10)},
                       {f"gene{i}" for i in range(10)},
                       self.config)
        assert s < self.config.threshold


class TestMatchAttributes:
    def make_schemas(self):
        a = Schema("A", ["Organism", "SeqLength", "Accession"])
        b = Schema("B", ["OrganismName", "Length", "AccNo"])
        organisms = {f"Aspergillus {i}" for i in range(10)}
        lengths_a = {str(i) for i in range(100, 140)}
        lengths_b = {str(i) for i in range(100, 130)}
        acc_a = {f"P{i}" for i in range(20)}
        acc_b = {f"P{i}" for i in range(10, 30)}
        va = {"Organism": organisms, "SeqLength": lengths_a,
              "Accession": acc_a}
        vb = {"OrganismName": organisms, "Length": lengths_b,
              "AccNo": acc_b}
        return a, b, va, vb

    def test_finds_correct_pairs(self):
        a, b, va, vb = self.make_schemas()
        found = {(c.source.local_name, c.target.local_name)
                 for c in match_attributes(a, b, va, vb)}
        assert ("Organism", "OrganismName") in found

    def test_one_to_one_assignment(self):
        a, b, va, vb = self.make_schemas()
        correspondences = match_attributes(a, b, va, vb)
        sources = [c.source for c in correspondences]
        targets = [c.target for c in correspondences]
        assert len(sources) == len(set(sources))
        assert len(targets) == len(set(targets))

    def test_correspondence_endpoints_belong_to_schemas(self):
        a, b, va, vb = self.make_schemas()
        for c in match_attributes(a, b, va, vb):
            assert c.source.namespace == "A"
            assert c.target.namespace == "B"

    def test_high_threshold_returns_nothing(self):
        a, b, va, vb = self.make_schemas()
        config = MatcherConfig(threshold=0.999, strong_lexical=1.1,
                               strong_extensional=1.1)
        # only exactly-identical name+value pairs could pass — none here
        assert match_attributes(a, b, va, vb, config) == []

    def test_subsumption_detected_on_asymmetric_containment(self):
        a = Schema("A", ["Organism"])
        b = Schema("B", ["OrganismSub"])
        full = {f"species-{i}" for i in range(40)}
        subset = {f"species-{i}" for i in range(8)}
        found = match_attributes(a, b, {"Organism": full},
                                 {"OrganismSub": subset})
        assert found
        assert found[0].kind is MappingKind.SUBSUMPTION

    def test_symmetric_overlap_is_equivalence(self):
        a = Schema("A", ["Organism"])
        b = Schema("B", ["OrganismName"])
        vals = {f"species-{i}" for i in range(20)}
        found = match_attributes(a, b, {"Organism": vals},
                                 {"OrganismName": vals})
        assert found[0].kind is MappingKind.EQUIVALENCE

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MatcherConfig(threshold=2.0)
        with pytest.raises(ValueError):
            MatcherConfig(lexical_weight=0.0, extensional_weight=0.0)


class TestCandidates:
    def test_shared_reference_count(self):
        assert shared_reference_count({"a", "b"}, {"b", "c"}) == 1

    def test_ranking_by_shared_refs(self):
        refs = {
            "A": {f"P{i}" for i in range(30)},        # 0..29
            "B": {f"P{i}" for i in range(20, 40)},    # 10 shared with A
            "C": {f"P{i}" for i in range(38, 60)},    # 2 with B, 0 with A
        }
        ranked = rank_candidate_pairs(refs)
        assert ranked[0] == ("A", "B", 10)
        assert ranked[1] == ("B", "C", 2)

    def test_connected_pairs_skipped(self):
        refs = {"A": {"r1", "r2"}, "B": {"r1", "r2"}}
        graph = MappingGraph([SchemaMapping(
            "m", "A", "B",
            [PredicateCorrespondence(URI("A#x"), URI("B#y"))],
        )])
        assert rank_candidate_pairs(refs, graph) == []

    def test_deprecated_connection_does_not_block(self):
        refs = {"A": {"r1"}, "B": {"r1"}}
        graph = MappingGraph([SchemaMapping(
            "m", "A", "B",
            [PredicateCorrespondence(URI("A#x"), URI("B#y"))],
            deprecated=True,
        )])
        assert rank_candidate_pairs(refs, graph) == [("A", "B", 1)]

    def test_min_shared_filter(self):
        refs = {"A": {"r1"}, "B": {"r1"}, "C": set()}
        ranked = rank_candidate_pairs(refs, min_shared=2)
        assert ranked == []

    def test_deterministic_tie_break(self):
        refs = {"A": {"r"}, "B": {"r"}, "C": {"r"}}
        ranked = rank_candidate_pairs(refs)
        assert ranked == [("A", "B", 1), ("A", "C", 1), ("B", "C", 1)]
