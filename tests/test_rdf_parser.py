"""Tests for the SearchFor query parser."""

import pytest

from repro.rdf.parser import ParseError, parse_search_for
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import Literal, URI, Variable


class TestSinglePattern:
    def test_paper_example(self):
        q = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))")
        assert q.distinguished == (Variable("x"),)
        pattern = q.patterns[0]
        assert pattern.subject == Variable("x")
        assert pattern.predicate == URI("EMBL#Organism")
        assert pattern.object == Literal("%Aspergillus%")

    def test_quoted_literal_object(self):
        q = parse_search_for('SearchFor(x? : (x?, A#p, "a value"))')
        assert q.patterns[0].object == Literal("a value")

    def test_uri_object(self):
        q = parse_search_for("SearchFor(x? : (x?, A#p, EMBL:A78712))")
        assert q.patterns[0].object == URI("EMBL:A78712")

    def test_subject_constant(self):
        q = parse_search_for("SearchFor(o? : (EMBL:A78712, A#p, o?))")
        assert q.patterns[0].subject == URI("EMBL:A78712")

    def test_whitespace_insensitive(self):
        q = parse_search_for(
            "  SearchFor(  x?  :  ( x? , A#p , %v% )  )  ")
        assert q.patterns[0].predicate == URI("A#p")

    def test_round_trip_through_str(self):
        q = parse_search_for('SearchFor(x? : (x?, A#p, "v"))')
        assert parse_search_for(str(q)) == q


class TestConjunctive:
    def test_two_patterns(self):
        q = parse_search_for(
            "SearchFor(x?, y? : (x?, A#org, %Asp%) AND (x?, A#len, y?))")
        assert len(q.patterns) == 2
        assert q.distinguished == (Variable("x"), Variable("y"))

    def test_shared_variable_preserved(self):
        q = parse_search_for(
            "SearchFor(x? : (x?, A#p, %v%) AND (x?, A#q, z?))")
        assert q.patterns[0].subject == q.patterns[1].subject


class TestErrors:
    def test_not_a_query(self):
        with pytest.raises(ParseError):
            parse_search_for("SELECT * FROM t")

    def test_missing_colon(self):
        with pytest.raises(ParseError):
            parse_search_for("SearchFor(x? (x?, p, o))")

    def test_pattern_arity(self):
        with pytest.raises(ParseError):
            parse_search_for("SearchFor(x? : (x?, p))")

    def test_distinguished_must_be_variable(self):
        with pytest.raises(ParseError):
            parse_search_for("SearchFor(A#p : (x?, A#p, o))")

    def test_distinguished_must_appear_in_body(self):
        with pytest.raises(ParseError):
            parse_search_for("SearchFor(w? : (x?, A#p, %v%))")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_search_for("SearchFor(x? : ((x?, A#p, %v%))")

    def test_literal_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_search_for('SearchFor(x? : (x?, "p", o?))')

    def test_empty_term(self):
        with pytest.raises(ParseError):
            parse_search_for("SearchFor(x? : (x?, , o?))")


class TestEquivalenceWithManualConstruction:
    def test_parse_equals_manual(self):
        manual = ConjunctiveQuery(
            [TriplePattern(Variable("x"), URI("EMBL#Organism"),
                           Literal("%Aspergillus%"))],
            [Variable("x")],
        )
        parsed = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))")
        assert parsed == manual
