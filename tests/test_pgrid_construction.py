"""Tests for P-Grid path assignment and routing-table population."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgrid.construction import (
    assign_paths,
    build_by_exchanges,
    populate_routing_tables,
    replica_groups,
)
from repro.pgrid.peer import PGridPeer
from repro.util.hashing import order_preserving_hash
from repro.util.keys import Key, common_prefix_length


def paths_cover_keyspace(paths):
    """Leaf paths must partition the key space: prefix-free, and the
    leaf fractions must sum to 1."""
    unique = sorted(set(paths))
    for i, a in enumerate(unique):
        for b in unique[i + 1:]:
            if a != b:
                assert not a.is_prefix_of(b), (a, b)
                assert not b.is_prefix_of(a), (a, b)
    total = sum(2.0 ** -len(p) for p in unique)
    assert total == pytest.approx(1.0)


class TestAssignPaths:
    def test_single_peer_gets_root(self):
        assert assign_paths(1) == {"peer-0": Key("")}

    def test_power_of_two_is_balanced(self):
        assignment = assign_paths(8)
        assert sorted(p.bits for p in assignment.values()) == sorted(
            format(i, "03b") for i in range(8)
        )

    def test_partition_invariant_odd_sizes(self):
        for n in (3, 5, 7, 13, 100):
            assignment = assign_paths(n)
            paths_cover_keyspace(list(assignment.values()))

    def test_replication_groups_sizes(self):
        assignment = assign_paths(12, replication=3)
        groups = replica_groups(assignment)
        assert sum(len(g) for g in groups.values()) == 12
        assert all(len(g) == 3 for g in groups.values())

    def test_replication_uneven(self):
        assignment = assign_paths(10, replication=3)
        groups = replica_groups(assignment)
        assert sum(len(g) for g in groups.values()) == 10
        assert {len(g) for g in groups.values()} <= {2, 3}

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            assign_paths(0)
        with pytest.raises(ValueError):
            assign_paths(4, replication=0)

    def test_sample_driven_tries_balance_load(self):
        # Keys clustered in a narrow region of the key space (strings
        # over a two-letter alphabet occupy a thin band under the
        # order-preserving hash): the sample-driven trie splits that
        # band deeper than a uniform split would, yielding a lower max
        # leaf load.
        rng = random.Random(1)
        sample = [
            order_preserving_hash(
                "".join(rng.choice("ab") for _ in range(8)))
            for _ in range(200)
        ]

        def max_load(assignment):
            loads = {}
            for key in sample:
                owners = [p for p in set(assignment.values())
                          if p.is_prefix_of(key)]
                assert len(owners) == 1
                loads[owners[0]] = loads.get(owners[0], 0) + 1
            return max(loads.values())

        adapted = assign_paths(16, key_sample=sample,
                               rng=random.Random(2))
        uniform = assign_paths(16, rng=random.Random(2))
        assert max_load(adapted) < max_load(uniform)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 60), st.integers(1, 4))
    def test_partition_property(self, n, replication):
        assignment = assign_paths(n, replication=replication,
                                  rng=random.Random(0))
        assert len(assignment) == n
        paths_cover_keyspace(list(assignment.values()))


class TestRoutingTables:
    def _build_peers(self, n, refs=2, seed=0):
        assignment = assign_paths(n, rng=random.Random(seed))
        peers = {
            node_id: PGridPeer(node_id, path)
            for node_id, path in assignment.items()
        }
        populate_routing_tables(peers, refs_per_level=refs,
                                rng=random.Random(seed))
        return peers

    def test_every_level_has_a_reference(self):
        peers = self._build_peers(16)
        for peer in peers.values():
            assert len(peer.routing_table) == len(peer.path)
            for level, refs in enumerate(peer.routing_table):
                assert refs, f"{peer.node_id} level {level} empty"

    def test_references_cover_complementary_subtree(self):
        peers = self._build_peers(16)
        for peer in peers.values():
            for level, refs in enumerate(peer.routing_table):
                complement = peer.path.sibling_prefix(level)
                for ref in refs:
                    other = peers[ref].path
                    assert (other.is_prefix_of(complement)
                            or complement.is_prefix_of(other))

    def test_refs_per_level_bounded(self):
        peers = self._build_peers(32, refs=3)
        for peer in peers.values():
            for refs in peer.routing_table:
                assert 1 <= len(refs) <= 3

    def test_replicas_share_path_and_exclude_self(self):
        assignment = assign_paths(8, replication=2, rng=random.Random(1))
        peers = {nid: PGridPeer(nid, p) for nid, p in assignment.items()}
        populate_routing_tables(peers, rng=random.Random(1))
        for node_id, peer in peers.items():
            assert node_id not in peer.replicas
            for replica in peer.replicas:
                assert peers[replica].path == peer.path
            assert len(peer.replicas) == 1  # groups of 2

    def test_forwarding_strictly_increases_common_prefix(self):
        peers = self._build_peers(32)
        key = order_preserving_hash("some-data-key")
        for peer in peers.values():
            if peer.is_responsible_for(key):
                continue
            level = common_prefix_length(peer.path, key)
            for ref in peer.routing_table[level]:
                other = peers[ref].path
                assert (common_prefix_length(other, key) > level
                        or other.is_prefix_of(key))


class TestExchangeConstruction:
    def test_single_peer(self):
        assert build_by_exchanges(1) == {"peer-0": Key("")}

    def test_paths_become_distinct(self):
        assignment = build_by_exchanges(16, rng=random.Random(3))
        # After ample meetings, no two peers should sit on the same
        # path unless the depth cap forced replication.
        paths = [p.bits for p in assignment.values()]
        assert len(set(paths)) >= 12

    def test_prefix_free_after_convergence(self):
        assignment = build_by_exchanges(8, rng=random.Random(4))
        paths = sorted(set(assignment.values()))
        for i, a in enumerate(paths):
            for b in paths[i + 1:]:
                assert not (a != b and a.is_prefix_of(b))

    def test_depth_bounded(self):
        assignment = build_by_exchanges(8, max_depth=3,
                                        rng=random.Random(5))
        assert all(len(p) <= 3 for p in assignment.values())

    def test_mean_depth_near_log_n(self):
        assignment = build_by_exchanges(32, rng=random.Random(6))
        depths = [len(p) for p in assignment.values()]
        mean_depth = sum(depths) / len(depths)
        assert 4.0 <= mean_depth <= 7.0  # log2(32) = 5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            build_by_exchanges(0)
