"""Tests for the fault lab's plan and injector layers.

Message-level semantics are pinned down against a raw
:class:`SimNetwork` with toy nodes (precise, cheap); the
whole-deployment guarantees — the no-fault path staying bit-identical
and composition with churn — run against real GridVine networks.
"""

import random

import pytest

from repro.faultlab import (
    CrashRestart,
    FaultInjector,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    MessageReorder,
    Partition,
)
from repro.faultlab.plan import FOREVER, clause_seed
from repro.simnet.churn import ChurnProcess
from repro.simnet.events import EventLoop, SimulationError
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Message, Node, SimNetwork


class Recorder(Node):
    """Toy node logging every delivery as (kind, src, time)."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message):
        self.received.append((message.kind, message.src, self.loop.now))


def toy_network(num_nodes=3, latency=0.05):
    net = SimNetwork(loop=EventLoop(), latency=ConstantLatency(latency),
                     rng=random.Random(1))
    nodes = [Recorder(f"n{i}") for i in range(num_nodes)]
    for node in nodes:
        net.attach(node)
    return net, nodes


class TestDropAndPartition:
    def test_drop_probability_one_drops_everything(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(MessageDrop(probability=1.0),))
        with FaultInjector(net, plan) as injector:
            for _ in range(5):
                a.send("n1", "ping")
            net.loop.run_until_idle()
            assert b.received == []
            assert injector.injected["drop"] == 5
        assert net.metrics.drops_by_reason["fault"] == 5
        assert net.metrics.faults_by_kind["drop:ping"] == 5

    def test_drop_filters_by_kind_and_window(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            MessageDrop(kinds=("ping",), probability=1.0,
                        start=0.0, until=10.0),
        ))
        with FaultInjector(net, plan):
            a.send("n1", "ping")   # dropped (kind + window match)
            a.send("n1", "pong")   # other kind: delivered
            net.loop.run_until(20.0)
            a.send("n1", "ping")   # window over: delivered
            net.loop.run_until_idle()
        assert [kind for kind, _s, _t in b.received] == ["pong", "ping"]

    def test_symmetric_partition_blocks_both_ways_until_heal(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            Partition(side_a=("n0",), side_b=("n1",),
                      start=0.0, heal_at=10.0),
        ))
        with FaultInjector(net, plan):
            a.send("n1", "x")
            b.send("n0", "y")
            net.loop.run_until(10.0)
            assert a.received == [] and b.received == []
            a.send("n1", "x2")  # healed
            net.loop.run_until_idle()
        assert [k for k, _s, _t in b.received] == ["x2"]
        assert net.metrics.drops_by_reason["partition"] == 2

    def test_asymmetric_partition_blocks_one_direction(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            Partition(side_a=("n0",), side_b=("n1",), symmetric=False),
        ))
        with FaultInjector(net, plan):
            a.send("n1", "blocked")
            b.send("n0", "passes")
            net.loop.run_until_idle()
            assert b.received == []
            assert [k for k, _s, _t in a.received] == ["passes"]

    def test_partition_spares_uninvolved_nodes(self):
        net, (a, _b, c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            Partition(side_a=("n0",), side_b=("n1",)),
        ))
        with FaultInjector(net, plan):
            a.send("n2", "ok")
            net.loop.run_until_idle()
        assert [k for k, _s, _t in c.received] == ["ok"]


class TestDuplicateDelayReorder:
    def test_duplicate_delivers_extra_copies(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            MessageDuplicate(probability=1.0, copies=2),
        ))
        with FaultInjector(net, plan) as injector:
            a.send("n1", "dup")
            net.loop.run_until_idle()
            assert len(b.received) == 3  # original + 2 copies
            assert injector.injected["duplicate"] == 2
        # copies are accounted as faults, not as sent messages
        assert net.metrics.messages_sent == 1

    def test_duplicate_copies_do_not_alias_payload(self):
        net, nodes = toy_network()

        class Mutator(Node):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.seen = []

            def on_message(self, message):
                # A handler that consumes its payload must not affect
                # the fault-injected duplicate delivery.
                self.seen.append(message.payload.pop("value"))

        mutator = Mutator("m")
        net.attach(mutator)
        plan = FaultPlan(seed=0, faults=(
            MessageDuplicate(probability=1.0, copies=1),
        ))
        with FaultInjector(net, plan):
            nodes[0].send("m", "once", {"value": 7})
            net.loop.run_until_idle()
        assert mutator.seen == [7, 7]

    def test_delay_adds_jitter_within_bounds(self):
        net, (a, b, _c) = toy_network(latency=0.0)
        plan = FaultPlan(seed=0, faults=(
            MessageDelay(probability=1.0, jitter_min=2.0, jitter_max=3.0),
        ))
        with FaultInjector(net, plan):
            a.send("n1", "slow")
            net.loop.run_until_idle()
        (_k, _s, at) = b.received[0]
        assert 2.0 <= at <= 3.0

    def test_reorder_lets_later_message_overtake(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            MessageReorder(kinds=("first",), probability=1.0,
                           hold_max=60.0),
        ))
        with FaultInjector(net, plan):
            a.send("n1", "first")
            net.loop.run_until(1.0)
            a.send("n1", "second")
            net.loop.run_until_idle()
        assert [k for k, _s, _t in b.received] == ["second", "first"]

    def test_reorder_flushes_after_hold_max_on_quiet_link(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            MessageReorder(probability=1.0, hold_max=5.0),
        ))
        with FaultInjector(net, plan):
            a.send("n1", "held")
            net.loop.run_until_idle()
        assert [k for k, _s, _t in b.received] == ["held"]
        assert b.received[0][2] >= 5.0

    def test_duplicate_fires_on_reordered_messages(self):
        """Stacked clauses compose: a held (reordered) original still
        gets its duplicate copies delivered normally."""
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            MessageReorder(probability=1.0, hold_max=5.0),
            MessageDuplicate(probability=1.0, copies=1),
        ))
        with FaultInjector(net, plan) as injector:
            a.send("n1", "both")
            net.loop.run_until_idle()
            assert injector.injected["duplicate"] == 1
            assert injector.injected["reorder"] == 1
        # the copy travelled normally; the held original flushed later
        assert len(b.received) == 2

    def test_identical_clauses_draw_independently(self):
        """Two identical probabilistic clauses must compound, not fire
        in lockstep on the same messages."""
        def drops(clauses):
            net, (a, b, _c) = toy_network()
            with FaultInjector(net, FaultPlan(seed=2, faults=clauses)):
                for i in range(300):
                    a.send("n1", f"m{i}")
                net.loop.run_until_idle()
            return 300 - len(b.received)

        single = drops((MessageDrop(probability=0.5),))
        stacked = drops((MessageDrop(probability=0.5),
                         MessageDrop(probability=0.5)))
        # independent streams: ~75% compound drop rate vs ~50%
        assert stacked > single
        assert stacked > 0.6 * 300

    def test_uninstall_releases_held_messages(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            MessageReorder(probability=1.0, hold_max=500.0),
        ))
        injector = FaultInjector(net, plan).install()
        a.send("n1", "held")
        net.loop.run_until(1.0)
        assert b.received == []
        injector.uninstall()
        net.loop.run_until_idle()
        assert [k for k, _s, _t in b.received] == ["held"]


class TestCrashRestart:
    def test_crash_window_and_restart(self):
        net, (a, b, _c) = toy_network()
        plan = FaultPlan(seed=0, faults=(
            CrashRestart(node="n1", at=5.0, restart_at=15.0),
        ))
        with FaultInjector(net, plan) as injector:
            net.loop.run_until(6.0)
            assert not net.is_online("n1")
            assert injector.currently_down() == {"n1"}
            a.send("n1", "lost")
            net.loop.run_until(16.0)
            assert net.is_online("n1")
            a.send("n1", "found")
            net.loop.run_until_idle()
        assert [k for k, _s, _t in b.received] == ["found"]
        assert net.metrics.drops_by_reason["offline"] == 1

    def test_uninstall_restarts_still_down_nodes(self):
        net, _nodes = toy_network()
        plan = FaultPlan(seed=0, faults=(
            CrashRestart(node="n2", at=0.0, restart_at=FOREVER),
        ))
        injector = FaultInjector(net, plan).install()
        net.loop.run_until(1.0)
        assert not net.is_online("n2")
        injector.uninstall()
        assert net.is_online("n2")

    def test_composes_with_churn_idempotently(self):
        """Neither process recovers (or double-fails) the other's
        nodes; churn bookkeeping stays consistent throughout."""
        net, _nodes = toy_network(num_nodes=6)
        churn = ChurnProcess(net, mean_uptime=5.0, mean_downtime=5.0,
                             rng=random.Random(3))
        plan = FaultPlan(seed=1, faults=(
            CrashRestart(node="n0", at=2.0, restart_at=40.0),
            CrashRestart(node="n1", at=3.0, restart_at=50.0),
        ))
        churn.start()
        injector = FaultInjector(net, plan).install()
        net.loop.run_until(100.0)
        churn.stop()
        injector.uninstall()
        net.loop.run_until(200.0)
        churn.assert_consistent()

    def test_second_injector_rejected(self):
        net, _nodes = toy_network()
        first = FaultInjector(net, FaultPlan()).install()
        with pytest.raises(SimulationError):
            FaultInjector(net, FaultPlan()).install()
        first.uninstall()


class TestDeterminism:
    def test_clause_seed_stable_under_sibling_removal(self):
        drop = MessageDrop(probability=0.5)
        plan_a = FaultPlan(seed=9, faults=(drop,))
        plan_b = FaultPlan(seed=9, faults=(MessageDelay(), drop)).without(0)
        assert plan_b.faults == plan_a.faults
        assert clause_seed(9, plan_a.faults[0]) == \
            clause_seed(9, plan_b.faults[0])

    def test_same_plan_same_decisions(self):
        def run():
            net, (a, b, _c) = toy_network()
            plan = FaultPlan(seed=4, faults=(
                MessageDrop(probability=0.5),
                MessageDelay(probability=0.5),
            ))
            with FaultInjector(net, plan):
                for i in range(30):
                    a.send("n1", f"m{i}")
                net.loop.run_until_idle()
            return ([(k, round(t, 9)) for k, _s, t in b.received],
                    dict(net.metrics.faults_by_kind))

        assert run() == run()

    def test_empty_plan_is_bit_identical_to_no_injector(self):
        """Hook-point guarantee: an installed injector whose clauses
        never fire leaves delivery order, timing and metrics exactly
        as without any injector."""
        def run(with_injector):
            net, (a, b, _c) = toy_network()
            injector = None
            if with_injector:
                plan = FaultPlan(seed=0, faults=(
                    MessageDrop(probability=0.0),
                    MessageDelay(probability=0.0),
                    Partition(side_a=("n0",), side_b=("n1",),
                              start=50.0, heal_at=60.0),
                ))
                injector = FaultInjector(net, plan).install()
            for i in range(20):
                a.send("n1", f"m{i}")
                b.send("n0", f"r{i}")
            net.loop.run_until_idle()
            if injector is not None:
                injector.uninstall()
            return (a.received, b.received, net.metrics.snapshot())

        plain = run(False)
        faulted = run(True)
        assert plain[0] == faulted[0]
        assert plain[1] == faulted[1]
        # snapshots match except the (empty) fault bookkeeping
        assert plain[2] == faulted[2]


class TestPlanDescribe:
    def test_describe_covers_every_clause(self):
        plan = FaultPlan(seed=0, faults=(
            MessageDrop(kinds=("reply",), probability=0.5, until=60.0),
            MessageDuplicate(copies=2),
            MessageDelay(),
            MessageReorder(),
            Partition(side_a=("n0",), side_b=("n1", "n2")),
            CrashRestart(node="n1", at=5.0),
        ))
        text = "\n".join(plan.describe())
        for token in ("drop", "duplicate", "delay", "reorder",
                      "partition", "crash"):
            assert token in text
        assert len(plan.describe()) == len(plan)

    def test_without_removes_exactly_one_clause(self):
        plan = FaultPlan(seed=0, faults=(
            MessageDrop(), MessageDelay(), MessageReorder(),
        ))
        smaller = plan.without(1)
        assert len(smaller) == 2
        assert isinstance(smaller.faults[0], MessageDrop)
        assert isinstance(smaller.faults[1], MessageReorder)
        assert smaller.seed == plan.seed
