"""Integration tests: causal traces across queries, shards and faults.

The load-bearing invariant (the ISSUE's acceptance criterion): with
tracing enabled, one query produces **one connected trace whose message
spans cover exactly the messages the metrics plane attributes to the
query's op tag** — tracer hooks sit at the same code gates as the
attribution counters, so the two planes can never drift.
"""

import pytest

from repro.mediation.network import GridVineNetwork
from repro.obs.analysis import (
    connected_components,
    events_of,
    spans_of,
    trace_ids,
)
from repro.pgrid.peer import PGridPeer
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.latency import ConstantLatency
from repro.simnet.shard import ShardedTransport
from repro.util.keys import Key

QUERY = "SearchFor(x? : (x?, S0#org, %Aspergillus%))"


def build_corpus(seed=29):
    """A miniature of the E13 bench corpus: mapped chain S0 -> S1."""
    net = GridVineNetwork.build(num_peers=32, seed=seed)
    schemas = [Schema(f"S{i}", ["org", "len"], domain="e13")
               for i in range(2)]
    for schema in schemas:
        net.insert_schema(schema)
    triples = []
    for schema in schemas:
        for j in range(6):
            organism = "Aspergillus" if j % 3 == 0 else "Yeast"
            subject = URI(f"{schema.name}:e{j}")
            triples.append(Triple(subject, URI(f"{schema.name}#org"),
                                  Literal(f"{organism}-{j}")))
            triples.append(Triple(subject, URI(f"{schema.name}#len"),
                                  Literal(str(100 + j))))
    net.insert_triples(triples)
    net.create_mapping(schemas[0], schemas[1],
                       [("org", "org"), ("len", "len")])
    net.settle()
    return net


def assert_trace_well_formed(records, trace):
    """Connected, fully closed, and every span id is unique."""
    spans = spans_of(records, trace)
    assert spans, trace
    assert connected_components(spans) == 1
    assert all(s["end"] is not None for s in spans)
    assert all(s["status"] != "open" for s in spans)
    ids = [s["span"] for s in spans]
    assert len(ids) == len(set(ids))


class TestQueryTraces:
    def test_query_trace_covers_attributed_messages_exactly(self):
        net = build_corpus()
        tracer = net.install_tracer()
        out = net.search_for(QUERY)
        records = net.trace_records()
        traces = trace_ids(records)
        assert len(traces) == 1
        trace = traces[0]
        assert trace.startswith("searchfor:")
        assert_trace_well_formed(records, trace)
        message_spans = [s for s in spans_of(records, trace)
                         if s["kind"] == "message"]
        # The trace plane and the metrics plane agree *exactly*: both
        # hooks sit at the same gate in SimNetwork.send.
        assert out.messages > 0
        assert len(message_spans) == out.messages
        root = next(s for s in spans_of(records, trace)
                    if s["parent"] is None)
        assert root["attrs"]["messages"] == out.messages
        assert tracer.dropped == 0

    def test_batch_trace_covers_attributed_messages_exactly(self):
        net = build_corpus()
        net.install_tracer()
        engine = net.create_engine(domain="e13")
        result = engine.execute_batch([
            QUERY, "SearchFor(x? : (x?, S1#org, %Yeast%))"])
        records = net.trace_records()
        traces = trace_ids(records)
        assert len(traces) == 1
        trace = traces[0]
        assert trace.startswith("batch:")
        assert_trace_well_formed(records, trace)
        message_spans = [s for s in spans_of(records, trace)
                         if s["kind"] == "message"]
        assert result.messages > 0
        assert len(message_spans) == result.messages

    def test_concurrent_queries_never_share_spans(self):
        net = build_corpus()
        net.install_tracer()
        first = net.search_for(QUERY)
        second = net.search_for(
            "SearchFor(x? : (x?, S1#org, %Yeast%))")
        records = net.trace_records()
        traces = trace_ids(records)
        assert len(traces) == 2
        for trace, outcome in zip(traces, (first, second)):
            assert_trace_well_formed(records, trace)
            assert sum(1 for s in spans_of(records, trace)
                       if s["kind"] == "message") == outcome.messages

    def test_traces_are_bit_identical_across_runs(self):
        def run():
            net = build_corpus()
            net.install_tracer()
            net.search_for(QUERY)
            return net.trace_records()

        assert run() == run()

    def test_registry_views_include_network_and_tracer(self):
        net = build_corpus()
        net.install_tracer()
        net.search_for(QUERY)
        snap = net.registry.snapshot()
        assert "network" in snap["views"]
        assert snap["views"]["tracer"]["spans"] > 0
        assert snap["views"]["tracer"]["dropped"] == 0

    def test_untraced_runs_record_nothing(self):
        net = build_corpus()
        out = net.search_for(QUERY)
        assert out.messages > 0
        assert net.trace_records() == []
        assert net.network.tracer is None


def run_fault_retry(num_shards, mode):
    """A dropped-then-retried route: the origin's first attempt hits an
    offline responsible peer; the timeout retry (after recovery)
    succeeds.  Returns (completed summary, trace records)."""
    transport = ShardedTransport(num_shards,
                                 latency=ConstantLatency(0.05),
                                 seed=3, mode=mode)
    a = PGridPeer("peer-a", Key("0"))
    b = PGridPeer("peer-b", Key("1"))
    a.routing_table[0] = ["peer-b"]
    b.routing_table[0] = ["peer-a"]
    b.store.setdefault("1", []).append("needle")
    transport.add_peer(a, 0)
    transport.add_peer(b, num_shards - 1)
    transport.set_online_at(0.2, "peer-b", False)
    transport.set_online_at(5.0, "peer-b", True)
    transport.install_tracer()
    transport.start()
    transport.run_until(1.0)
    transport.submit("peer-a", "retrieve", Key("1"))
    # Barrier between the recovery toggle (5.0) and the retry timer
    # (16.0): remote liveness maps publish window-start state, so the
    # retry only sees the recovery after a barrier past 5.0.
    transport.run_until(6.0)
    transport.run_until_quiescent()
    transport.stop()
    return dict(transport.completed), transport.trace_records()


class TestFaultRetryTrace:
    def test_failed_attempt_and_retry_are_sibling_spans(self):
        completed, records = run_fault_retry(1, "inline")
        assert completed[0][:2] == (True, 1)  # found the needle
        traces = trace_ids(records)
        assert len(traces) == 1
        assert_trace_well_formed(records, traces[0])
        attempts = [s for s in spans_of(records)
                    if s["kind"] == "attempt"]
        assert [s["name"] for s in attempts] == [
            "attempt:1", "attempt:2"]
        failed, retried = attempts
        assert failed["status"] == "timeout"
        assert retried["status"] == "ok"
        assert failed["parent"] == retried["parent"]  # siblings
        event_names = {e["name"] for e in events_of(records)}
        assert "drop:offline" in event_names
        assert "failover" in event_names
        # The retry's hops made it through.
        hops = [s["name"] for s in spans_of(records)
                if s["kind"] == "message"]
        assert hops == ["msg:route", "msg:reply"]

    def test_identical_across_runs_shard_counts_and_modes(self):
        completed, baseline = run_fault_retry(1, "inline")
        for num_shards, mode in ((1, "inline"), (2, "inline"),
                                 (2, "process")):
            again, records = run_fault_retry(num_shards, mode)
            assert again == completed, (num_shards, mode)
            assert records == baseline, (num_shards, mode)


@pytest.mark.parametrize("mode", ["inline", "process"])
def test_sharded_trace_export_is_deterministic(tmp_path, mode):
    from repro.obs.tracer import export_records_jsonl

    _completed, records = run_fault_retry(2, mode)
    path = tmp_path / f"{mode}.jsonl"
    export_records_jsonl(records, str(path))
    assert path.read_text() == "".join(
        __import__("json").dumps(r, sort_keys=True) + "\n"
        for r in records)
