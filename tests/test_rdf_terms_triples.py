"""Tests for terms and triples."""

import pytest

from repro.rdf.terms import Literal, URI, Variable, is_ground
from repro.rdf.triples import ALL_POSITIONS, Position, Triple


class TestTerms:
    def test_empty_value_rejected(self):
        for cls in (URI, Literal, Variable):
            with pytest.raises(ValueError):
                cls("")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            URI(42)

    def test_immutability(self):
        u = URI("x")
        with pytest.raises(AttributeError):
            u.value = "y"

    def test_equality_is_type_sensitive(self):
        assert URI("x") != Literal("x")
        assert Literal("x") != Variable("x")
        assert URI("x") == URI("x")

    def test_ordering_uris_then_literals_then_variables(self):
        terms = [Variable("a"), Literal("a"), URI("a")]
        assert sorted(terms) == [URI("a"), Literal("a"), Variable("a")]

    def test_uri_namespace_split(self):
        u = URI("EMBL#Organism")
        assert u.namespace == "EMBL"
        assert u.local_name == "Organism"

    def test_uri_without_hash(self):
        u = URI("EMBL:A78712")
        assert u.namespace == "EMBL:A78712"
        assert u.local_name == "EMBL:A78712"

    def test_str_forms(self):
        assert str(URI("a")) == "<a>"
        assert str(Literal("a")) == '"a"'
        assert str(Variable("a")) == "a?"

    def test_is_ground(self):
        assert is_ground(URI("a"))
        assert is_ground(Literal("a"))
        assert not is_ground(Variable("a"))


class TestLikeLiterals:
    def test_detection(self):
        assert Literal("%Aspergillus%").is_like_pattern
        assert not Literal("Aspergillus").is_like_pattern
        assert not Literal("%onlyleading").is_like_pattern
        assert Literal("%%").is_like_pattern

    def test_needle(self):
        assert Literal("%Aspergillus%").like_needle == "Aspergillus"

    def test_needle_on_plain_literal_raises(self):
        with pytest.raises(ValueError):
            Literal("plain").like_needle

    def test_matches_value_like(self):
        like = Literal("%sperg%")
        assert like.matches_value(Literal("Aspergillus niger"))
        assert not like.matches_value(Literal("Yeast"))

    def test_matches_value_exact(self):
        exact = Literal("Aspergillus")
        assert exact.matches_value(Literal("Aspergillus"))
        assert not exact.matches_value(Literal("Aspergillus niger"))

    def test_like_matches_uri_objects_too(self):
        assert Literal("%A787%").matches_value(URI("EMBL:A78712"))


class TestTriple:
    def test_positions(self):
        triple = Triple(URI("s"), URI("p"), Literal("o"))
        assert triple.at(Position.SUBJECT) == URI("s")
        assert triple.at(Position.PREDICATE) == URI("p")
        assert triple.at(Position.OBJECT) == Literal("o")

    def test_all_positions_order(self):
        assert [p.value for p in ALL_POSITIONS] == [
            "subject", "predicate", "object"]

    def test_type_validation(self):
        with pytest.raises(TypeError):
            Triple(Literal("s"), URI("p"), Literal("o"))
        with pytest.raises(TypeError):
            Triple(URI("s"), Literal("p"), Literal("o"))
        with pytest.raises(TypeError):
            Triple(URI("s"), URI("p"), Variable("o"))

    def test_object_may_be_uri(self):
        triple = Triple(URI("s"), URI("p"), URI("o"))
        assert triple.object == URI("o")

    def test_immutability(self):
        triple = Triple(URI("s"), URI("p"), Literal("o"))
        with pytest.raises(AttributeError):
            triple.subject = URI("t")

    def test_equality_and_hash(self):
        a = Triple(URI("s"), URI("p"), Literal("o"))
        b = Triple(URI("s"), URI("p"), Literal("o"))
        assert a == b
        assert len({a, b}) == 1

    def test_ordering(self):
        a = Triple(URI("a"), URI("p"), Literal("o"))
        b = Triple(URI("b"), URI("p"), Literal("o"))
        assert a < b

    def test_as_tuple(self):
        triple = Triple(URI("s"), URI("p"), Literal("o"))
        assert triple.as_tuple() == (URI("s"), URI("p"), Literal("o"))
