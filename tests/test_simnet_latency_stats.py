"""Statistical sanity checks on the WAN latency model.

The E2 reproduction leans on this model; these tests pin down the
properties the calibration relies on, so silent regressions in the
sampling logic (e.g. swapped parameters) fail loudly.
"""

import random
import statistics

from repro.simnet.latency import LogNormalWANLatency


def samples(model, count, rng, distinct_pairs=True):
    out = []
    for i in range(count):
        src = f"s{i}" if distinct_pairs else "s"
        dst = f"d{i}" if distinct_pairs else "d"
        out.append(model.sample(src, dst, rng))
    return out


class TestLogNormalShape:
    def test_median_tracks_parameter(self):
        rng = random.Random(1)
        model = LogNormalWANLatency(median_ms=80.0, jitter_ms=0.0,
                                    straggler_prob=0.0)
        xs = samples(model, 3000, rng)
        assert 0.06 <= statistics.median(xs) <= 0.105

    def test_sigma_controls_spread(self):
        rng1, rng2 = random.Random(2), random.Random(2)
        narrow = LogNormalWANLatency(sigma=0.2, jitter_ms=0.0,
                                     straggler_prob=0.0)
        wide = LogNormalWANLatency(sigma=1.2, jitter_ms=0.0,
                                   straggler_prob=0.0)
        xs_narrow = samples(narrow, 2000, rng1)
        xs_wide = samples(wide, 2000, rng2)
        ratio_narrow = (sorted(xs_narrow)[1900] / sorted(xs_narrow)[100])
        ratio_wide = (sorted(xs_wide)[1900] / sorted(xs_wide)[100])
        assert ratio_wide > 3 * ratio_narrow

    def test_jitter_adds_positive_noise_per_message(self):
        rng = random.Random(3)
        model = LogNormalWANLatency(jitter_ms=50.0, straggler_prob=0.0)
        first = model.sample("a", "b", rng)
        second = model.sample("a", "b", rng)
        # same sticky base, different jitter draws
        assert first != second

    def test_straggler_fraction_matches_probability(self):
        rng = random.Random(4)
        model = LogNormalWANLatency(straggler_prob=0.3,
                                    straggler_ms=10_000.0,
                                    jitter_ms=0.0)
        slow = 0
        for i in range(1000):
            # fresh destination each time: independent straggler draws
            if model.sample("src", f"host-{i}", rng) > 1.0:
                slow += 1
        assert 230 <= slow <= 370

    def test_straggler_status_sticky_per_host(self):
        rng = random.Random(5)
        model = LogNormalWANLatency(straggler_prob=0.5,
                                    straggler_ms=50_000.0,
                                    jitter_ms=0.0)
        verdicts = set()
        for _ in range(10):
            verdicts.add(model.sample("a", "victim", rng) > 5.0)
        assert len(verdicts) == 1  # always slow or always fast

    def test_calibrated_e2_profile_anchors(self):
        """The calibration constants used by bench E2 keep producing a
        per-message distribution compatible with multi-hop totals in
        the paper's 1 s / 5 s window."""
        rng = random.Random(6)
        model = LogNormalWANLatency(median_ms=100.0, sigma=0.9,
                                    jitter_ms=10.0, straggler_prob=0.15,
                                    straggler_ms=3000.0)
        xs = samples(model, 4000, rng)
        median = statistics.median(xs)
        assert 0.07 <= median <= 0.16          # ~100 ms typical hop
        tail = sum(1 for x in xs if x > 1.0) / len(xs)
        assert 0.08 <= tail <= 0.25            # straggler tail exists
