"""Protocol-level unit tests for PGridPeer internals."""

import pytest

from repro.pgrid.overlay import PGridOverlay
from repro.pgrid.peer import PGridPeer
from repro.simnet.network import Message, SimNetwork
from repro.util.hashing import uniform_hash
from repro.util.keys import Key


class TestLocalStore:
    def make_peer(self):
        peer = PGridPeer("p", Key("0"))
        network = SimNetwork()
        network.attach(peer)
        return peer

    def test_insert_retrieve_remove_cycle(self):
        peer = self.make_peer()
        key = Key("0101")
        peer.local_insert(key, "a")
        peer.local_insert(key, "b")
        assert peer.local_retrieve(key) == ["a", "b"]
        assert peer.local_remove(key, "a") == 1
        assert peer.local_retrieve(key) == ["b"]
        assert peer.local_remove(key, "zz") == 0

    def test_remove_all_equal_copies(self):
        peer = self.make_peer()
        key = Key("0101")
        peer.local_insert(key, "x")
        peer.local_insert(key, "x")
        assert peer.local_remove(key, "x") == 2
        assert peer.local_retrieve(key) == []

    def test_empty_bucket_cleaned_up(self):
        peer = self.make_peer()
        key = Key("0101")
        peer.local_insert(key, "x")
        peer.local_remove(key, "x")
        assert key.bits not in peer.store

    def test_local_merge_dedupes(self):
        peer = self.make_peer()
        key = Key("0101")
        assert peer.local_merge(key, "v") is True
        assert peer.local_merge(key, "v") is False
        assert peer.local_retrieve(key) == ["v"]

    def test_local_retrieve_prefix(self):
        peer = self.make_peer()
        peer.local_insert(Key("0101"), "a")
        peer.local_insert(Key("0110"), "b")
        peer.local_insert(Key("0011"), "c")
        assert sorted(peer.local_retrieve_prefix(Key("01"))) == ["a", "b"]

    def test_storage_load(self):
        peer = self.make_peer()
        peer.local_insert(Key("01"), "a")
        peer.local_insert(Key("01"), "b")
        peer.local_insert(Key("00"), "c")
        assert peer.storage_load() == 3

    def test_responsibility(self):
        peer = self.make_peer()
        assert peer.is_responsible_for(Key("0111"))
        assert not peer.is_responsible_for(Key("1000"))


class TestMessageHandling:
    def test_unknown_kind_raises(self):
        peer = PGridPeer("p", Key("0"))
        network = SimNetwork()
        network.attach(peer)
        with pytest.raises(ValueError):
            peer.on_message(Message(kind="gossip", src="q", dst="p"))

    def test_unknown_op_raises(self):
        peer = PGridPeer("p", Key("0"))
        with pytest.raises(ValueError):
            peer._execute_op("mystery", Key("01"), None)

    def test_probe_is_acked(self):
        network = SimNetwork()
        a = PGridPeer("a", Key("0"))
        b = PGridPeer("b", Key("1"))
        network.attach(a)
        network.attach(b)
        a._probe_pending["t1"] = (0, "b")
        a.send("b", "probe", {"token": "t1"})
        network.loop.run_until_idle()
        assert "t1" not in a._probe_pending  # ack cleared it

    def test_replicate_applies_without_reply(self):
        network = SimNetwork()
        a = PGridPeer("a", Key("0"))
        b = PGridPeer("b", Key("0"))
        network.attach(a)
        network.attach(b)
        a.send("b", "replicate", {"op": "insert", "key": "0101",
                                  "value": "v"})
        network.loop.run_until_idle()
        assert b.local_retrieve(Key("0101")) == ["v"]
        assert network.metrics.messages_by_kind.get("reply", 0) == 0

    def test_hop_ttl_drops_runaway_routes(self):
        network = SimNetwork()
        a = PGridPeer("a", Key("0"))
        network.attach(a)
        runaway = Message(kind="route", src="x", dst="a",
                          payload={"op": "retrieve", "op_id": "z",
                                   "key": "1" * 8, "origin": "x"},
                          hops=100)
        a.on_message(runaway)  # must not answer or forward
        network.loop.run_until_idle()
        assert network.metrics.messages_sent == 0


class TestOpResults:
    def test_failure_reports_attempts_and_latency(self):
        overlay = PGridOverlay.build(8, seed=20, timeout=2.0,
                                     max_retries=2)
        key = uniform_hash("dead-key")
        origin = overlay.peer_ids()[0]
        owners = overlay.responsible_peers(key)
        if origin in owners:
            pytest.skip("origin owns the key")
        for owner in owners:
            overlay.network.set_online(owner, False)
        result = overlay.retrieve_sync(origin, key)
        assert not result.success
        assert result.attempts == 3  # 1 try + 2 retries
        assert result.latency == pytest.approx(3 * 2.0, rel=0.01)

    def test_success_latency_matches_clock(self):
        overlay = PGridOverlay.build(8, seed=21)
        origin = overlay.peer_ids()[0]
        key = uniform_hash("timed")
        before = overlay.loop.now
        result = overlay.update_sync(origin, key, "v")
        assert result.success
        assert result.latency == pytest.approx(
            overlay.loop.now - before)

    def test_late_duplicate_reply_ignored(self):
        # A reply for an op that already completed must be a no-op.
        overlay = PGridOverlay.build(4, seed=22)
        origin = overlay.peer(overlay.peer_ids()[0])
        origin._complete({"op_id": "stale-op", "values": [],
                          "hops": 1})  # no pending entry: ignored


class TestBlacklistInRouting:
    def test_blacklisted_ref_avoided_when_alternative_exists(self):
        peer = PGridPeer("p", Key("0"))
        network = SimNetwork()
        network.attach(peer)
        peer.routing_table = [["good", "bad"]]
        peer.ref_blacklist["bad"] = 1_000.0  # far future
        picks = {peer._pick_reference(0) for _ in range(20)}
        assert picks == {"good"}

    def test_blacklist_expires(self):
        peer = PGridPeer("p", Key("0"))
        network = SimNetwork()
        network.attach(peer)
        peer.routing_table = [["only"]]
        peer.ref_blacklist["only"] = 0.0  # already expired at t=0
        assert peer._pick_reference(0) == "only"

    def test_all_blacklisted_falls_back_to_blind_pick(self):
        peer = PGridPeer("p", Key("0"))
        network = SimNetwork()
        network.attach(peer)
        peer.routing_table = [["a", "b"]]
        peer.ref_blacklist["a"] = 1_000.0
        peer.ref_blacklist["b"] = 1_000.0
        assert peer._pick_reference(0) in {"a", "b"}
