"""Tests for the reformulation-plan cache and its invalidation."""

import pytest

from repro.engine.cache import PlanCache
from repro.engine.signature import canonicalize_query, rename_query
from repro.engine.versioning import MappingVersionClock
from repro.mapping.graph import MappingGraph
from repro.mapping.model import PredicateCorrespondence, SchemaMapping
from repro.rdf.parser import parse_search_for
from repro.rdf.terms import URI, Variable
from repro.reformulation.planner import plan_reformulations
from repro.selforg import SelfOrganizationController


def _other_schema(name):
    from repro.schema.model import Schema
    return Schema(name, ["attr"], domain="bio")


def edge(mapping_id, src, dst, pairs):
    return SchemaMapping(
        mapping_id, src, dst,
        [PredicateCorrespondence(URI(f"{src}#{a}"), URI(f"{dst}#{b}"))
         for a, b in pairs],
    )


QUERY = parse_search_for("SearchFor(x? : (x?, A#org, %Asp%))")
ALPHA_VARIANT = parse_search_for("SearchFor(y? : (y?, A#org, %Asp%))")
OTHER_QUERY = parse_search_for("SearchFor(x? : (x?, A#len, v))")


class TestSignature:
    def test_alpha_variants_share_canonical_form(self):
        assert canonicalize_query(QUERY)[0] == \
            canonicalize_query(ALPHA_VARIANT)[0]

    def test_different_structure_different_form(self):
        assert canonicalize_query(QUERY)[0] != \
            canonicalize_query(OTHER_QUERY)[0]

    def test_inverse_renaming_round_trips(self):
        canonical, inverse = canonicalize_query(ALPHA_VARIANT)
        assert rename_query(canonical, inverse) == ALPHA_VARIANT

    def test_repeated_variables_preserved(self):
        loop_query = parse_search_for(
            "SearchFor(x? : (x?, A#org, x?))"
        )
        chain_query = parse_search_for(
            "SearchFor(x? : (x?, A#org, y?))"
        )
        assert canonicalize_query(loop_query)[0] != \
            canonicalize_query(chain_query)[0]


class TestVersionClock:
    def test_bump_touches_both_endpoints_only(self):
        clock = MappingVersionClock()
        clock.bump(edge("m1", "A", "B", [("org", "name")]))
        assert clock.version("A") == 1
        assert clock.version("B") == 1
        assert clock.version("C") == 0
        assert clock.events == 1

    def test_snapshot_currency(self):
        clock = MappingVersionClock()
        snap = clock.snapshot(["A", "B"])
        assert clock.is_current(snap)
        clock.bump(edge("m1", "A", "B", [("org", "name")]))
        assert not clock.is_current(snap)
        assert clock.is_current(clock.snapshot(["A", "B"]))


class TestPlanCache:
    def _cache_and_graph(self, capacity=8):
        clock = MappingVersionClock()
        cache = PlanCache(clock, capacity=capacity)
        graph = MappingGraph([edge("m1", "A", "B", [("org", "name")])])
        return clock, cache, graph

    def test_miss_then_hit(self):
        _clock, cache, graph = self._cache_and_graph()
        assert cache.lookup(QUERY, 5) is None
        cache.store(QUERY, 5, plan_reformulations(QUERY, graph, 5))
        cached = cache.lookup(QUERY, 5)
        assert cached is not None
        assert [r.query for r in cached] == \
            [r.query for r in plan_reformulations(QUERY, graph, 5)]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_alpha_variant_hits_and_is_renamed(self):
        _clock, cache, graph = self._cache_and_graph()
        cache.store(QUERY, 5, plan_reformulations(QUERY, graph, 5))
        cached = cache.lookup(ALPHA_VARIANT, 5)
        assert cached is not None
        assert cached[0].query == ALPHA_VARIANT
        # the reformulated query keeps the variant's variable too
        assert Variable("y") in cached[1].query.variables()
        assert cached[1].query.patterns[0].predicate == URI("B#name")

    def test_max_hops_is_part_of_the_key(self):
        _clock, cache, graph = self._cache_and_graph()
        cache.store(QUERY, 5, plan_reformulations(QUERY, graph, 5))
        assert cache.lookup(QUERY, 3) is None

    def test_eager_invalidation_on_bump(self):
        clock, cache, graph = self._cache_and_graph()
        cache.store(QUERY, 5, plan_reformulations(QUERY, graph, 5))
        clock.bump(edge("m2", "B", "C", [("name", "species")]))
        assert cache.lookup(QUERY, 5) is None
        assert cache.stats.invalidations == 1

    def test_unrelated_mapping_does_not_invalidate(self):
        clock, cache, graph = self._cache_and_graph()
        cache.store(QUERY, 5, plan_reformulations(QUERY, graph, 5))
        clock.bump(edge("mx", "X", "Y", [("a", "b")]))
        assert cache.lookup(QUERY, 5) is not None
        assert cache.stats.invalidations == 0

    def test_lazy_check_catches_pre_subscription_staleness(self):
        clock, cache, graph = self._cache_and_graph()
        cache.store(QUERY, 5, plan_reformulations(QUERY, graph, 5))
        # Mutate the clock behind the cache's back by bypassing the
        # listener list (simulates an entry stored against an older
        # clock): fake by editing the snapshot of the stored entry.
        entry = next(iter(cache._entries.values()))
        entry.snapshot["A"] = -1
        assert cache.lookup(QUERY, 5) is None

    def test_lru_eviction(self):
        clock = MappingVersionClock()
        cache = PlanCache(clock, capacity=1)
        graph = MappingGraph()
        cache.store(QUERY, 5, plan_reformulations(QUERY, graph, 5))
        cache.store(OTHER_QUERY, 5,
                    plan_reformulations(OTHER_QUERY, graph, 5))
        assert cache.stats.evictions == 1
        assert cache.lookup(QUERY, 5) is None
        assert cache.lookup(OTHER_QUERY, 5) is not None

    def test_zero_capacity_disables_caching(self):
        clock = MappingVersionClock()
        cache = PlanCache(clock, capacity=0)
        graph = MappingGraph()
        cache.store(QUERY, 5, plan_reformulations(QUERY, graph, 5))
        assert len(cache) == 0
        assert cache.lookup(QUERY, 5) is None


@pytest.fixture
def fig2_engine(fig2_network):
    net, embl, emp = fig2_network
    engine = net.create_engine(domain="bio")
    return net, embl, emp, engine


class TestEngineInvalidation:
    """Network-driven invalidation through the mapping-event hooks."""

    def test_insert_invalidates_and_extends_plan(self, fig2_engine):
        net, embl, emp, engine = fig2_engine
        query = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"
        )
        assert len(engine.plan(query)) == 1
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        assert engine.cache.stats.invalidations >= 1
        plan = engine.plan(query)
        assert len(plan) == 2
        assert plan[1].query.patterns[0].predicate == \
            URI("EMP#SystematicName")

    def test_deprecate_invalidates_affected_plan(self, fig2_engine):
        net, embl, emp, engine = fig2_engine
        query = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"
        )
        mapping = net.create_mapping(embl, emp,
                                     [("Organism", "SystematicName")])
        net.settle()
        assert len(engine.plan(query)) == 2
        invalidations_before = engine.cache.stats.invalidations
        planner_runs = engine.stats.planner_invocations
        net.deprecate_mapping(mapping)
        net.settle()
        assert engine.cache.stats.invalidations > invalidations_before
        # the shrunk plan is re-planned (cache did not serve stale)
        plan = engine.plan(query)
        assert len(plan) == 1
        assert engine.stats.planner_invocations == planner_runs + 1

    def test_remove_invalidates_affected_plan(self, fig2_engine):
        net, embl, emp, engine = fig2_engine
        query = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"
        )
        mapping = net.create_mapping(embl, emp,
                                     [("Organism", "SystematicName")])
        net.settle()
        assert len(engine.plan(query)) == 2
        net.remove_mapping(mapping)
        net.settle()
        assert len(engine.plan(query)) == 1

    def test_unrelated_mapping_keeps_plan_cached(self, fig2_engine):
        net, embl, emp, engine = fig2_engine
        query = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"
        )
        engine.plan(query)
        planner_runs = engine.stats.planner_invocations
        other_a = _other_schema("OtherA")
        other_b = _other_schema("OtherB")
        net.insert_schema(other_a)
        net.insert_schema(other_b)
        net.create_mapping(other_a, other_b, [("attr", "attr")])
        net.settle()
        engine.plan(query)
        assert engine.stats.planner_invocations == planner_runs

    def test_sync_from_overlay_backfills_existing_mappings(
            self, fig2_network):
        net, embl, emp = fig2_network
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        # engine created *after* the mapping: the domain backfill
        # crawls the overlay so the mirror still sees it
        engine = net.create_engine(domain="bio")
        query = parse_search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"
        )
        assert len(engine.plan(query)) == 2


class TestSelforgInvalidation:
    """The self-organization loop's mutations flow through the hooks."""

    def test_controller_rounds_report_plan_invalidations(
            self, bio_dataset):
        from repro import GridVineNetwork
        from repro.selforg import CreationPolicy

        net = GridVineNetwork.build(num_peers=24, seed=11)
        for schema in bio_dataset.schemas:
            net.insert_schema(schema)
        net.insert_triples(bio_dataset.triples)
        # One *directed* seed mapping leaves ci < 0 (degree pairs
        # (0,1) and (1,0)), so the creation loop has work to do.
        net.insert_mapping(
            bio_dataset.ground_truth_mapping(bio_dataset.schemas[0].name,
                                             bio_dataset.schemas[1].name),
        )
        net.settle()
        engine = net.create_engine(domain=bio_dataset.domain)
        # Warm the cache with one query per schema's first attribute.
        from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
        queries = []
        for schema in bio_dataset.schemas[:4]:
            x, y = Variable("x"), Variable("y")
            queries.append(ConjunctiveQuery(
                [TriplePattern(x, schema.predicate(schema.attributes[0]),
                               y)],
                [x],
            ))
        for query in queries:
            engine.plan(query)
        assert engine.stats.planner_invocations == len(queries)
        controller = SelfOrganizationController(
            net, domain=bio_dataset.domain,
            policy=CreationPolicy(mappings_per_round=3),
            engine=engine,
        )
        reports = controller.run(max_rounds=3)
        mutated = [r for r in reports if r.created or r.deprecated]
        assert mutated, "self-organization should create mappings"
        assert any(r.plans_invalidated > 0 for r in mutated)
