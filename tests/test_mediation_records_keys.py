"""Tests for mediation records and key derivation."""

import pytest

from repro.mapping.model import PredicateCorrespondence, SchemaMapping
from repro.mediation.keys import domain_key, schema_key, term_key, triple_keys
from repro.mediation.records import (
    ConnectivityRecord,
    IncomingMappingRecord,
    MappingRecord,
    SchemaRecord,
    TripleRecord,
)
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.util.hashing import order_preserving_hash


def sample_mapping():
    return SchemaMapping(
        "m", "A", "B",
        [PredicateCorrespondence(URI("A#x"), URI("B#y"))],
    )


class TestRecords:
    def test_triple_record_equality(self):
        t = Triple(URI("s"), URI("p"), Literal("o"))
        assert TripleRecord(t) == TripleRecord(t)
        assert TripleRecord(t) != TripleRecord(
            Triple(URI("s2"), URI("p"), Literal("o")))

    def test_schema_record_equality(self):
        s = Schema("S", ["a"])
        assert SchemaRecord(s) == SchemaRecord(s)

    def test_mapping_and_incoming_are_distinct_types(self):
        m = sample_mapping()
        assert MappingRecord(m) != IncomingMappingRecord(m)

    def test_mapping_record_sees_deprecation_flag(self):
        m = sample_mapping()
        assert MappingRecord(m) != MappingRecord(m.with_deprecated(True))

    def test_connectivity_record(self):
        r = ConnectivityRecord("S", 2, 3)
        assert r.degree_pair == (2, 3)
        assert r == ConnectivityRecord("S", 2, 3)
        assert r != ConnectivityRecord("S", 2, 4)

    def test_connectivity_rejects_negative(self):
        with pytest.raises(ValueError):
            ConnectivityRecord("S", -1, 0)

    def test_records_hashable(self):
        t = Triple(URI("s"), URI("p"), Literal("o"))
        assert len({TripleRecord(t), TripleRecord(t)}) == 1

    def test_records_immutable(self):
        record = ConnectivityRecord("S", 1, 1)
        with pytest.raises(AttributeError):
            record.in_degree = 5


class TestKeys:
    def test_triple_keys_order(self):
        t = Triple(URI("s"), URI("p"), Literal("o"))
        keys = triple_keys(t)
        assert keys == [order_preserving_hash("s"),
                        order_preserving_hash("p"),
                        order_preserving_hash("o")]

    def test_term_key_matches_value_hash(self):
        assert term_key(URI("EMBL#Organism")) == order_preserving_hash(
            "EMBL#Organism")
        assert term_key(Literal("value")) == order_preserving_hash("value")

    def test_schema_key(self):
        assert schema_key("EMBL") == order_preserving_hash("EMBL")

    def test_domain_key(self):
        assert domain_key("bio") == order_preserving_hash("bio")

    def test_key_width_parameter(self):
        assert len(schema_key("EMBL", bits=16)) == 16
