"""Tests for the mapping graph: adjacency, paths, cycles, composition."""

import pytest

from repro.mapping.graph import MappingGraph
from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
    SchemaMapping,
)
from repro.rdf.terms import URI


def edge(mapping_id, src, dst, pairs=None, provenance="user",
         deprecated=False):
    pairs = pairs if pairs is not None else [("p", "p")]
    return SchemaMapping(
        mapping_id, src, dst,
        [PredicateCorrespondence(URI(f"{src}#{a}"), URI(f"{dst}#{b}"))
         for a, b in pairs],
        provenance=provenance,
        deprecated=deprecated,
    )


class TestAdjacency:
    def test_add_and_lookup(self):
        g = MappingGraph([edge("m1", "A", "B")])
        assert g.get("m1") is not None
        assert g.schemas() == ["A", "B"]

    def test_add_overwrites_by_id(self):
        g = MappingGraph()
        g.add(edge("m1", "A", "B"))
        g.add(edge("m1", "A", "C"))
        assert g.get("m1").target_schema == "C"
        assert g.outgoing("A")[0].target_schema == "C"

    def test_remove(self):
        g = MappingGraph([edge("m1", "A", "B")])
        removed = g.remove("m1")
        assert removed.mapping_id == "m1"
        assert g.mappings() == []
        assert g.remove("m1") is None

    def test_degree(self):
        g = MappingGraph([edge("m1", "A", "B"), edge("m2", "A", "C"),
                          edge("m3", "C", "A")])
        assert g.degree("A") == (1, 2)
        assert g.degree("B") == (1, 0)

    def test_deprecated_excluded_from_views(self):
        g = MappingGraph([edge("m1", "A", "B", deprecated=True)])
        assert g.mappings() == []
        assert g.outgoing("A") == []
        assert g.degree("A") == (0, 0)
        assert len(g.mappings(include_deprecated=True)) == 1

    def test_deprecate_in_place(self):
        g = MappingGraph([edge("m1", "A", "B")])
        g.deprecate("m1")
        assert g.get("m1").deprecated
        assert g.mappings() == []

    def test_add_schema_node_without_mappings(self):
        g = MappingGraph()
        g.add_schema("Lonely")
        assert g.schemas() == ["Lonely"]
        assert g.degree("Lonely") == (0, 0)


class TestPaths:
    def make_chain(self):
        return MappingGraph([
            edge("m1", "A", "B"), edge("m2", "B", "C"),
            edge("m3", "A", "C"),
        ])

    def test_find_paths_returns_all_simple_paths(self):
        paths = self.make_chain().find_paths("A", "C")
        assert [[m.mapping_id for m in p] for p in paths] == [
            ["m3"], ["m1", "m2"]]

    def test_find_paths_respects_max_hops(self):
        paths = self.make_chain().find_paths("A", "C", max_hops=1)
        assert [[m.mapping_id for m in p] for p in paths] == [["m3"]]

    def test_reachable_schemas(self):
        g = self.make_chain()
        assert g.reachable_schemas("A") == {"B", "C"}
        assert g.reachable_schemas("C") == set()

    def test_reachable_with_hop_limit(self):
        g = MappingGraph([edge("m1", "A", "B"), edge("m2", "B", "C")])
        assert g.reachable_schemas("A", max_hops=1) == {"B"}

    def test_deprecated_edges_not_traversed(self):
        g = MappingGraph([edge("m1", "A", "B", deprecated=True)])
        assert g.reachable_schemas("A") == set()


class TestComposition:
    def test_compose_two_hops(self):
        g = [edge("m1", "A", "B", [("x", "y")]),
             edge("m2", "B", "C", [("y", "z")])]
        composed = MappingGraph.compose_path(g)
        assert composed.source_schema == "A"
        assert composed.target_schema == "C"
        assert composed.correspondences[0].source == URI("A#x")
        assert composed.correspondences[0].target == URI("C#z")

    def test_compose_drops_lost_predicates(self):
        g = [edge("m1", "A", "B", [("x", "y"), ("u", "v")]),
             edge("m2", "B", "C", [("y", "z")])]
        composed = MappingGraph.compose_path(g)
        assert len(composed.correspondences) == 1

    def test_compose_empty_result_is_none(self):
        g = [edge("m1", "A", "B", [("x", "y")]),
             edge("m2", "B", "C", [("other", "z")])]
        assert MappingGraph.compose_path(g) is None

    def test_compose_non_chaining_raises(self):
        with pytest.raises(ValueError):
            MappingGraph.compose_path(
                [edge("m1", "A", "B"), edge("m2", "C", "D")])

    def test_subsumption_is_contagious(self):
        sub = SchemaMapping(
            "m2", "B", "C",
            [PredicateCorrespondence(URI("B#y"), URI("C#z"),
                                     kind=MappingKind.SUBSUMPTION)],
        )
        composed = MappingGraph.compose_path(
            [edge("m1", "A", "B", [("x", "y")]), sub])
        assert composed.correspondences[0].kind is MappingKind.SUBSUMPTION

    def test_compose_correspondences_handles_cycles(self):
        cycle = [edge("m1", "A", "B", [("x", "y")]),
                 edge("m2", "B", "A", [("y", "x")])]
        composed = MappingGraph.compose_correspondences(cycle)
        assert composed[0].source == composed[0].target == URI("A#x")


class TestCycles:
    def test_two_cycle(self):
        g = MappingGraph([edge("m1", "A", "B"), edge("m2", "B", "A")])
        cycles = g.find_cycles()
        assert len(cycles) == 1
        assert [m.mapping_id for m in cycles[0]] == ["m1", "m2"]

    def test_triangle_found_once(self):
        g = MappingGraph([edge("m1", "A", "B"), edge("m2", "B", "C"),
                          edge("m3", "C", "A")])
        cycles = g.find_cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 3

    def test_max_length_respected(self):
        g = MappingGraph([edge("m1", "A", "B"), edge("m2", "B", "C"),
                          edge("m3", "C", "A")])
        assert g.find_cycles(max_length=2) == []

    def test_no_cycles_in_dag(self):
        g = MappingGraph([edge("m1", "A", "B"), edge("m2", "B", "C")])
        assert g.find_cycles() == []

    def test_parallel_mappings_make_multiple_cycles(self):
        g = MappingGraph([edge("m1", "A", "B"), edge("m1b", "A", "B"),
                          edge("m2", "B", "A")])
        assert len(g.find_cycles()) == 2

    def test_deprecated_edges_excluded(self):
        g = MappingGraph([edge("m1", "A", "B"),
                          edge("m2", "B", "A", deprecated=True)])
        assert g.find_cycles() == []
