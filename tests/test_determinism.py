"""Determinism guarantees: identical seeds yield identical simulations.

Reproducibility is a design requirement (DESIGN.md §6): every
experiment must be re-runnable bit-for-bit.  These tests rebuild whole
deployments twice from the same seed and compare observable state and
measurements exactly.
"""

from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
from repro.mediation.network import GridVineNetwork
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.latency import LogNormalWANLatency


def build_and_run(seed):
    """A small end-to-end run; returns all observables."""
    net = GridVineNetwork.build(num_peers=24, seed=seed, replication=2,
                                latency=LogNormalWANLatency())
    embl = Schema("EMBL", ["Organism"], domain="d")
    emp = Schema("EMP", ["SystematicName"], domain="d")
    net.insert_schema(embl)
    net.insert_schema(emp)
    net.insert_triples([
        Triple(URI(f"EMBL:{i}"), URI("EMBL#Organism"),
               Literal(f"Aspergillus {i}"))
        for i in range(10)
    ] + [
        Triple(URI("EMP:9"), URI("EMP#SystematicName"),
               Literal("Aspergillus 9")),
    ])
    net.create_mapping(embl, emp, [("Organism", "SystematicName")],
                       origin=net.peer_ids()[0])
    net.settle()
    outcomes = []
    for strategy in ("local", "iterative", "recursive"):
        out = net.search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))",
            strategy=strategy, origin=net.peer_ids()[1])
        outcomes.append((strategy, out.result_count, round(out.latency, 9),
                         out.messages))
    return {
        "paths": sorted((n, p.path.bits) for n, p in net.peers.items()),
        "loads": sorted(p.storage_load() for p in net.peers.values()),
        "outcomes": outcomes,
        "metrics": net.metrics_snapshot(),
        "now": round(net.loop.now, 9),
    }


class TestSimulationDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert build_and_run(42) == build_and_run(42)

    def test_different_seeds_differ(self):
        a = build_and_run(42)
        b = build_and_run(43)
        # topology or timings must differ somewhere
        assert a != b


class TestDatagenDeterminism:
    def test_dataset_bitwise_stable(self):
        kwargs = dict(num_schemas=6, num_entities=50,
                      entities_per_schema=12, seed=9)
        a = BioDatasetGenerator(**kwargs).generate()
        b = BioDatasetGenerator(**kwargs).generate()
        assert a.triples == b.triples
        assert a.attribute_concepts == b.attribute_concepts
        assert [e.values for e in a.entities] == [
            e.values for e in b.entities]

    def test_workload_stable(self):
        dataset = BioDatasetGenerator(
            num_schemas=4, num_entities=30, entities_per_schema=10,
            seed=2).generate()
        a = QueryWorkloadGenerator(dataset, seed=7).queries(30)
        b = QueryWorkloadGenerator(dataset, seed=7).queries(30)
        assert a == b


class TestSelfOrganizationDeterminism:
    def test_controller_rounds_stable(self):
        from repro.selforg import CreationPolicy, SelfOrganizationController

        def run():
            dataset = BioDatasetGenerator(
                num_schemas=6, num_entities=50, entities_per_schema=15,
                seed=4).generate()
            net = GridVineNetwork.build(num_peers=20, seed=4)
            for schema in dataset.schemas:
                net.insert_schema(schema)
            net.insert_triples(dataset.triples)
            net.insert_mapping(dataset.ground_truth_mapping(
                dataset.schemas[0].name, dataset.schemas[1].name))
            net.settle()
            controller = SelfOrganizationController(
                net, domain=dataset.domain,
                policy=CreationPolicy(mappings_per_round=2))
            reports = controller.run(max_rounds=5)
            return [
                (r.round_index, round(r.ci_before, 12),
                 round(r.ci_after, 12), tuple(r.created),
                 tuple(r.deprecated))
                for r in reports
            ]

        assert run() == run()
