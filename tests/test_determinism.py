"""Determinism guarantees: identical seeds yield identical simulations.

Reproducibility is a design requirement (DESIGN.md §6): every
experiment must be re-runnable bit-for-bit.  These tests rebuild whole
deployments twice from the same seed and compare observable state and
measurements exactly.
"""

from dataclasses import asdict

from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
from repro.mediation.network import GridVineNetwork
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.latency import LogNormalWANLatency


def build_and_run(seed):
    """A small end-to-end run; returns all observables."""
    net = GridVineNetwork.build(num_peers=24, seed=seed, replication=2,
                                latency=LogNormalWANLatency())
    embl = Schema("EMBL", ["Organism"], domain="d")
    emp = Schema("EMP", ["SystematicName"], domain="d")
    net.insert_schema(embl)
    net.insert_schema(emp)
    net.insert_triples([
        Triple(URI(f"EMBL:{i}"), URI("EMBL#Organism"),
               Literal(f"Aspergillus {i}"))
        for i in range(10)
    ] + [
        Triple(URI("EMP:9"), URI("EMP#SystematicName"),
               Literal("Aspergillus 9")),
    ])
    net.create_mapping(embl, emp, [("Organism", "SystematicName")],
                       origin=net.peer_ids()[0])
    net.settle()
    outcomes = []
    for strategy in ("local", "iterative", "recursive"):
        out = net.search_for(
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))",
            strategy=strategy, origin=net.peer_ids()[1])
        outcomes.append((strategy, out.result_count, round(out.latency, 9),
                         out.messages))
    return {
        "paths": sorted((n, p.path.bits) for n, p in net.peers.items()),
        "loads": sorted(p.storage_load() for p in net.peers.values()),
        "outcomes": outcomes,
        "metrics": net.metrics_snapshot(),
        "now": round(net.loop.now, 9),
    }


class TestSimulationDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert build_and_run(42) == build_and_run(42)

    def test_different_seeds_differ(self):
        a = build_and_run(42)
        b = build_and_run(43)
        # topology or timings must differ somewhere
        assert a != b


class TestDatagenDeterminism:
    def test_dataset_bitwise_stable(self):
        kwargs = dict(num_schemas=6, num_entities=50,
                      entities_per_schema=12, seed=9)
        a = BioDatasetGenerator(**kwargs).generate()
        b = BioDatasetGenerator(**kwargs).generate()
        assert a.triples == b.triples
        assert a.attribute_concepts == b.attribute_concepts
        assert [e.values for e in a.entities] == [
            e.values for e in b.entities]

    def test_workload_stable(self):
        dataset = BioDatasetGenerator(
            num_schemas=4, num_entities=30, entities_per_schema=10,
            seed=2).generate()
        a = QueryWorkloadGenerator(dataset, seed=7).queries(30)
        b = QueryWorkloadGenerator(dataset, seed=7).queries(30)
        assert a == b


def build_corpus_net(seed, num_peers=24):
    """A deployment over the generated corpus (shared by the auto /
    batch determinism runs)."""
    dataset = BioDatasetGenerator(
        num_schemas=4, num_entities=40, entities_per_schema=10,
        seed=seed).generate()
    net = GridVineNetwork.build(num_peers=num_peers, seed=seed,
                                replication=2)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    names = [s.name for s in dataset.schemas]
    for a, b in zip(names, names[1:]):
        net.insert_mapping(dataset.ground_truth_mapping(a, b),
                           bidirectional=True)
    net.settle()
    return net, dataset


class TestAutoStrategyDeterminism:
    """``strategy="auto"`` adds the optimizer + gossiped statistics to
    the loop; same seed must still mean the same decisions, results
    and message counts."""

    def test_auto_outcomes_stable(self):
        import random

        from repro.pgrid.maintenance import MaintenanceProcess
        from repro.datagen import QueryWorkloadGenerator

        def run():
            net, dataset = build_corpus_net(21)
            maintenance = MaintenanceProcess(net.peers, interval=20.0,
                                             rng=random.Random(9))
            maintenance.start()
            net.loop.run_until(net.loop.now + 400.0)
            maintenance.stop()
            net.loop.run_until(net.loop.now + 60.0)
            workload = QueryWorkloadGenerator(dataset, seed=5)
            observations = []
            for query in workload.queries(6):
                out = net.search_for(query, strategy="auto", max_hops=6,
                                     origin=net.peer_ids()[0])
                decision = out.decision
                observations.append((
                    out.result_count,
                    round(out.latency, 9),
                    out.messages,
                    None if decision is None else (
                        decision.strategy, decision.fallback,
                        decision.reformulations_pruned),
                ))
            return observations

        assert run() == run()


class TestEngineBatchDeterminism:
    """``engine.execute_batch`` shares scans across queries; the fetch
    schedule, dedup accounting and per-outcome rows must be seed-
    stable."""

    def test_execute_batch_stable(self):
        def run():
            net, dataset = build_corpus_net(13)
            engine = net.create_engine(domain=dataset.domain, max_hops=6)
            workload = QueryWorkloadGenerator(dataset, seed=3)
            batch = workload.queries(5) * 2  # repeats exercise the cache
            observed = []
            for _round in range(2):  # cold then warm
                result = engine.execute_batch(batch,
                                              origin=net.peer_ids()[0])
                observed.append((
                    [o.result_count for o in result.outcomes],
                    [sorted(map(str, o.sorted_results()))
                     for o in result.outcomes],
                    result.patterns_total,
                    result.patterns_fetched,
                    result.messages,
                ))
            observed.append(engine.stats.snapshot())
            return observed

        assert run() == run()


class TestScenarioDeterminism:
    """Full ``ScenarioRunner`` reports — churn, maintenance, failover,
    fault injection and all derived statistics — are a pure function
    of the spec."""

    def _spec(self, **overrides):
        from repro.resilience import ScenarioSpec
        base = dict(
            num_peers=20,
            replication=2,
            refs_per_level=2,
            seed=31,
            num_schemas=3,
            num_entities=24,
            num_queries=4,
            warmup=30.0,
            query_interval=20.0,
            mean_uptime=90.0,
            mean_downtime=30.0,
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_scenario_report_stable(self):
        from repro.resilience import ScenarioRunner
        spec = self._spec()
        a = ScenarioRunner.from_spec(spec).run()
        b = ScenarioRunner.from_spec(spec).run()
        assert asdict(a) == asdict(b)

    def test_faulted_scenario_report_stable(self):
        from repro.faultlab import (
            FaultPlan,
            MessageDelay,
            MessageDrop,
            Partition,
        )
        from repro.resilience import ScenarioRunner
        peers = [f"peer-{i}" for i in range(20)]
        plan = FaultPlan(seed=31, faults=(
            MessageDrop(probability=0.1, start=10.0, until=60.0),
            MessageDelay(probability=0.2, jitter_min=1.0, jitter_max=8.0),
            Partition(side_a=tuple(peers[:14]), side_b=tuple(peers[14:]),
                      start=40.0, heal_at=80.0),
        ))
        spec = self._spec(faults=plan)
        a = ScenarioRunner.from_spec(spec).run()
        b = ScenarioRunner.from_spec(spec).run()
        assert asdict(a) == asdict(b)
        assert a.faults_injected  # the plan actually fired

    def test_different_seed_differs(self):
        from repro.resilience import ScenarioRunner
        a = ScenarioRunner.from_spec(self._spec()).run()
        b = ScenarioRunner.from_spec(self._spec(seed=32)).run()
        assert asdict(a) != asdict(b)


class TestSelfOrganizationDeterminism:
    def test_controller_rounds_stable(self):
        from repro.selforg import CreationPolicy, SelfOrganizationController

        def run():
            dataset = BioDatasetGenerator(
                num_schemas=6, num_entities=50, entities_per_schema=15,
                seed=4).generate()
            net = GridVineNetwork.build(num_peers=20, seed=4)
            for schema in dataset.schemas:
                net.insert_schema(schema)
            net.insert_triples(dataset.triples)
            net.insert_mapping(dataset.ground_truth_mapping(
                dataset.schemas[0].name, dataset.schemas[1].name))
            net.settle()
            controller = SelfOrganizationController(
                net, domain=dataset.domain,
                policy=CreationPolicy(mappings_per_round=2))
            reports = controller.run(max_rounds=5)
            return [
                (r.round_index, round(r.ci_before, 12),
                 round(r.ci_after, 12), tuple(r.created),
                 tuple(r.deprecated))
                for r in reports
            ]

        assert run() == run()
