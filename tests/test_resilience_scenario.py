"""Tests for the resilience subsystem: scenarios, failover, origins.

Small specs on purpose — the full-scale A/B comparison lives in
``benchmarks/bench_e14_churn_recall.py``; these tests pin down the
runner's contract (determinism, reporting invariants, engine
integration) and the origin-selection fixes.
"""

import pytest

from repro.resilience import ScenarioRunner, ScenarioSpec, ground_truth_panel
from repro.simnet.churn import ChurnProcess
from repro.simnet.events import SimulationError


def small_spec(**overrides):
    base = dict(
        num_peers=24,
        replication=2,
        refs_per_level=2,
        seed=17,
        num_schemas=4,
        num_entities=40,
        num_queries=6,
        warmup=30.0,
        query_interval=20.0,
        mean_uptime=100.0,
        mean_downtime=40.0,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioRunner:
    def test_report_shape_and_invariants(self):
        report = ScenarioRunner.from_spec(small_spec()).run()
        assert report.queries_issued == 6
        assert 0 <= report.queries_complete <= report.queries_issued
        assert len(report.per_query_recall) == report.queries_issued
        assert all(0.0 <= r <= 1.0 for r in report.per_query_recall)
        assert 0.0 <= report.recall <= 1.0
        assert report.latency_p50 <= report.latency_p90 <= report.latency_p99
        assert report.failures > 0
        assert 0 < report.query_messages < report.total_messages
        assert report.summary()  # printable

    def test_same_spec_same_report(self):
        spec = small_spec()
        a = ScenarioRunner.from_spec(spec).run()
        b = ScenarioRunner.from_spec(spec).run()
        assert a == b

    def test_healthy_scenario_full_recall(self):
        """Without churn the ground-truth mapping chain answers the
        whole panel: any recall loss in churned runs is attributable
        to churn, not to the corpus setup."""
        report = ScenarioRunner.from_spec(
            small_spec(churn=False, maintenance=False)).run()
        assert report.recall == 1.0
        assert report.queries_complete == report.queries_issued
        assert report.failures == 0
        assert report.failovers == 0

    def test_run_scenario_facade_on_existing_network(self):
        runner = ScenarioRunner.from_spec(small_spec())
        panel = ground_truth_panel(runner.dataset, ("Aspergillus",))
        report = runner.network.run_scenario(
            panel, small_spec(num_queries=3), domain=runner.dataset.domain)
        assert report.queries_issued == 3

    def test_repeated_runs_report_per_run_deltas(self):
        """A second run_scenario on the same deployment must not fold
        the first run's traffic into its report (the counters are
        per-run deltas, not lifetime totals)."""
        quiet = small_spec(churn=False, maintenance=False, warmup=0.0,
                           query_interval=5.0)
        runner = ScenarioRunner.from_spec(quiet)
        first = runner.run()
        second = ScenarioRunner(runner.network, runner.panel, quiet,
                                origin=runner.origin,
                                domain=runner.dataset.domain).run()
        # Cumulative accounting would report >= 2x on the second run
        # (first run's traffic plus its own); per-run deltas stay in
        # the same ballpark.
        assert 0 < second.total_messages < first.total_messages * 1.5
        assert second.failovers == 0
        assert second.queries_issued == first.queries_issued

    def test_empty_panel_rejected(self):
        runner = ScenarioRunner.from_spec(small_spec())
        with pytest.raises(ValueError):
            ScenarioRunner(runner.network, [], small_spec())

    def test_zero_completed_queries_reports_none_latencies(self):
        """Regression: a churn run that measures no latency samples
        must report ``None`` percentiles (util.stats.percentile raises
        on empty input) and still render its summary."""
        report = ScenarioRunner.from_spec(
            small_spec(num_queries=0, warmup=20.0)).run()
        assert report.queries_issued == 0
        assert report.latency_p50 is None
        assert report.latency_p90 is None
        assert report.latency_p99 is None
        assert report.first_result_p50 is None
        assert report.recall == 0.0
        lines = report.summary()
        assert any("n/a" in line for line in lines)

    def test_zero_queries_with_limit_summary_renders(self):
        report = ScenarioRunner.from_spec(
            small_spec(num_queries=0, warmup=20.0, limit=3)).run()
        assert report.first_result_p50 is None
        assert report.summary()


class TestAutoStrategyScenario:
    def test_auto_scenario_reports_optimizer_activity(self):
        report = ScenarioRunner.from_spec(
            small_spec(strategy="auto", num_queries=6)).run()
        assert report.queries_issued == 6
        # anti-entropy pulls are on by default for auto and feed the
        # origin's registry
        assert report.stats_pulls > 0
        assert report.synopses_known > 0
        assert sum(report.auto_strategies.values()) > 0
        assert any("optimizer" in line for line in report.summary())
        assert report.recall > 0.5

    def test_auto_scenario_deterministic(self):
        spec = small_spec(strategy="auto", num_queries=4)
        assert (ScenarioRunner.from_spec(spec).run()
                == ScenarioRunner.from_spec(spec).run())


class TestEngineAcrossChurn:
    def test_plan_cache_stays_valid_and_answers_under_churn(self):
        """Mapping records are replicated and churn mutates no
        mappings, so the engine's cached plans stay valid while peers
        fail and recover — repeated queries hit the cache and still
        produce answers through failover."""
        report = ScenarioRunner.from_spec(
            small_spec(strategy="engine", num_queries=9,
                       replication=3, refs_per_level=3)).run()
        stats = report.engine_stats
        assert stats is not None
        assert stats["queries_executed"] == 9
        # 3 distinct panel queries, 9 executions: plans computed once
        # each, the other lookups are cache hits despite the churn.
        assert stats["planner_invocations"] == 3
        assert stats["cache"]["hits"] == 6
        assert stats["cache"]["invalidations"] == 0
        assert report.recall > 0.5
        assert report.failures > 0


class TestOriginSelection:
    def test_random_peer_skips_offline(self):
        runner = ScenarioRunner.from_spec(small_spec(churn=False))
        net = runner.network
        online_id = net.peer_ids()[0]
        for node_id in net.peer_ids()[1:]:
            net.network.set_online(node_id, False)
        for _ in range(8):
            assert net.random_peer().node_id == online_id

    def test_random_peer_raises_when_all_offline(self):
        runner = ScenarioRunner.from_spec(small_spec(churn=False))
        net = runner.network
        for node_id in net.peer_ids():
            net.network.set_online(node_id, False)
        with pytest.raises(SimulationError):
            net.random_peer()

    def test_explicit_offline_origin_raises(self):
        runner = ScenarioRunner.from_spec(small_spec(churn=False))
        net = runner.network
        victim = net.peer_ids()[3]
        net.network.set_online(victim, False)
        with pytest.raises(SimulationError):
            net.search_for(
                "SearchFor(x? : (x?, EMBL#Organism, %a%))",
                origin=victim,
            )

    def test_scenario_origin_is_protected(self):
        runner = ScenarioRunner.from_spec(small_spec())
        report = runner.run()
        # Every query was issued from the protected origin; none can
        # have failed for lack of an online origin.
        assert report.queries_issued == runner.spec.num_queries
        assert runner.network.network.is_online(runner.origin)


class TestChurnOnDeployment:
    def test_queries_fail_softly_not_catastrophically(self):
        """Even with failover off, churned queries degrade (lower
        recall) rather than erroring out of the harness."""
        report = ScenarioRunner.from_spec(
            small_spec(failover=False)).run()
        assert report.queries_issued == 6
        assert report.ops_gave_up >= 0  # counted, not raised

    def test_churn_bookkeeping_checked_by_runner(self):
        # assert_consistent() runs inside ScenarioRunner.run(); also
        # exercise it directly on a live network.
        runner = ScenarioRunner.from_spec(small_spec(churn=False))
        net = runner.network
        churn = ChurnProcess(net.network, mean_uptime=10.0,
                             mean_downtime=10.0,
                             protected={net.peer_ids()[0]})
        churn.start()
        net.loop.run_until(net.loop.now + 100.0)
        churn.stop()
        churn.assert_consistent()


class TestDropAccounting:
    def test_churn_scenario_reports_offline_drops(self):
        """Regression: messages sent to peers that churn took offline
        were silently dropped with no cause attached; the reason-
        tagged breakdown must surface them on the report."""
        report = ScenarioRunner.from_spec(small_spec()).run()
        assert report.failures > 0
        assert report.drops_by_reason.get("offline", 0) > 0
        # every drop is accounted to exactly one reason
        assert sum(report.drops_by_reason.values()) == \
            report.messages_dropped

    def test_quiet_scenario_reports_no_drops(self):
        report = ScenarioRunner.from_spec(
            small_spec(churn=False, maintenance=False)).run()
        assert report.messages_dropped == 0
        assert report.drops_by_reason == {}


class TestEngineExposure:
    def test_engine_strategy_exposes_engine(self):
        runner = ScenarioRunner.from_spec(
            small_spec(strategy="engine", churn=False, num_queries=2))
        assert runner.engine is None
        runner.run()
        assert runner.engine is not None
        assert runner.engine.stats.queries_executed == 2

    def test_other_strategies_leave_engine_none(self):
        runner = ScenarioRunner.from_spec(
            small_spec(churn=False, num_queries=2))
        runner.run()
        assert runner.engine is None
