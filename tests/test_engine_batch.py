"""Tests for the batched multi-query executor and the engine facade."""

import pytest

from repro.rdf.parser import parse_search_for
from repro.rdf.terms import URI

ORGANISM_QUERY = "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"
ALPHA_VARIANT = "SearchFor(y? : (y?, EMBL#Organism, %Aspergillus%))"


@pytest.fixture
def mapped_engine(fig2_network):
    """Figure 2 deployment with its mapping, plus an engine."""
    net, embl, emp = fig2_network
    engine = net.create_engine(domain="bio")
    net.create_mapping(embl, emp, [("Organism", "SystematicName")])
    net.settle()
    return net, engine


class TestEngineSearchFor:
    def test_matches_iterative_strategy(self, mapped_engine):
        net, engine = mapped_engine
        baseline = net.search_for(ORGANISM_QUERY, strategy="iterative")
        outcome = engine.search_for(ORGANISM_QUERY)
        assert outcome.results == baseline.results
        assert outcome.strategy == "engine"
        assert outcome.reformulations_explored == \
            baseline.reformulations_explored == 1

    def test_results_attributed_per_reformulation(self, mapped_engine):
        net, engine = mapped_engine
        outcome = engine.search_for(ORGANISM_QUERY)
        by_predicate = {
            query.patterns[0].predicate: rows
            for query, rows in outcome.results_by_query.items()
        }
        assert {URI("EMBL#Organism"), URI("EMP#SystematicName")} == \
            set(by_predicate)
        assert all(rows for rows in by_predicate.values())

    def test_accepts_surface_syntax_and_parsed_queries(
            self, mapped_engine):
        _net, engine = mapped_engine
        from_string = engine.search_for(ORGANISM_QUERY)
        from_parsed = engine.search_for(parse_search_for(ORGANISM_QUERY))
        assert from_string.results == from_parsed.results

    def test_repeated_query_skips_planner(self, mapped_engine):
        _net, engine = mapped_engine
        engine.search_for(ORGANISM_QUERY)
        engine.search_for(ORGANISM_QUERY)
        engine.search_for(ALPHA_VARIANT)
        assert engine.stats.planner_invocations == 1
        assert engine.stats.cache.hits == 2

    def test_outcome_carries_messages_and_latency(self, mapped_engine):
        # pinned origin: peer-0 does not own the pattern key spaces,
        # so resolution must actually cross the network
        _net, engine = mapped_engine
        outcome = engine.search_for(ORGANISM_QUERY, origin="peer-0")
        assert outcome.messages > 0
        assert outcome.latency > 0.0


class TestBatchExecution:
    def test_batch_dedupes_repeated_queries(self, mapped_engine):
        _net, engine = mapped_engine
        batch = [ORGANISM_QUERY] * 4
        result = engine.execute_batch(batch)
        # 4 queries x 2 reformulations x 1 pattern, fetched twice
        assert result.patterns_total == 8
        assert result.patterns_fetched == 2
        assert result.lookups_saved == 6

    def test_alpha_variants_share_lookups(self, mapped_engine):
        _net, engine = mapped_engine
        result = engine.execute_batch([ORGANISM_QUERY, ALPHA_VARIANT])
        assert result.patterns_fetched == 2
        outcomes = result.outcomes
        assert outcomes[0].results == outcomes[1].results
        assert len(outcomes[0].results) == 3

    def test_batch_matches_individual_execution(self, mapped_engine):
        net, engine = mapped_engine
        queries = [
            ORGANISM_QUERY,
            "SearchFor(x? : (x?, EMP#SystematicName, %Aspergillus%))",
            "SearchFor(x? : (x?, EMBL#Organism, %cerevisiae%))",
        ]
        expected = [net.search_for(q, strategy="iterative")
                    for q in queries]
        result = engine.execute_batch(queries)
        for outcome, baseline in zip(result.outcomes, expected):
            assert outcome.results == baseline.results

    def test_batch_saves_messages_over_sequential(self, fig2_network):
        net, embl, emp = fig2_network
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        net.settle()
        batch = [ORGANISM_QUERY] * 6
        sequential = net.create_engine(domain="bio", cache_capacity=0)
        messages_sequential = 0
        for query in batch:
            messages_sequential += sequential.search_for(query).messages
        batched = net.create_engine(domain="bio")
        result = batched.execute_batch(batch)
        assert result.messages < messages_sequential

    def test_conjunctive_batch_shares_common_pattern(self, fig2_network):
        net, _embl, _emp = fig2_network
        net.settle()
        conjunctive = ("SearchFor(x?, y? : (x?, EMBL#Organism, "
                       "%Aspergillus%) AND (x?, EMBL#SeqLength, y?))")
        single = "SearchFor(z? : (z?, EMBL#Organism, %Aspergillus%))"
        engine = net.create_engine(domain="bio")
        result = engine.execute_batch([conjunctive, single])
        # the organism pattern is shared (alpha-renamed) between both
        assert result.patterns_total == 3
        assert result.patterns_fetched == 2

    def test_empty_batch(self, mapped_engine):
        _net, engine = mapped_engine
        result = engine.execute_batch([])
        assert result.outcomes == []
        assert result.patterns_total == 0

    def test_stats_accumulate_across_batches(self, mapped_engine):
        _net, engine = mapped_engine
        engine.execute_batch([ORGANISM_QUERY, ORGANISM_QUERY])
        engine.execute_batch([ORGANISM_QUERY])
        stats = engine.stats
        assert stats.batches_executed == 2
        assert stats.queries_executed == 3
        assert stats.patterns_total == 6
        assert stats.patterns_fetched == 4
        assert stats.lookups_saved == 2
        assert 0.0 < stats.dedup_rate < 1.0

    def test_fresh_mapping_visible_before_settle(self, fig2_network):
        """The mirror reflects issued mappings immediately."""
        net, embl, emp = fig2_network
        engine = net.create_engine(domain="bio")
        net.create_mapping(embl, emp, [("Organism", "SystematicName")])
        # no settle: the overlay records may still be replicating, but
        # the engine's plan already includes the reformulation
        plan = engine.plan(parse_search_for(ORGANISM_QUERY))
        assert len(plan) == 2
