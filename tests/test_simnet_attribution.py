"""Per-operation message attribution: exact counts under background
traffic.

The headline regression: ``GridVineNetwork.search_for`` used to
compute ``QueryOutcome.messages`` as a delta of the *global*
``messages_sent`` counter, so any concurrent maintenance / churn /
replication traffic was billed to the query.  With per-operation
attribution the count follows the query's causal message chain and is
invariant to whatever else the network is doing.
"""

import random

import pytest

from repro.mediation.network import GridVineNetwork
from repro.pgrid.maintenance import MaintenanceProcess
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.network import Message, Node, SimNetwork


class Echo(Node):
    """Replies to every ping, so chains inherit attribution."""

    def on_message(self, message):
        if message.kind == "ping":
            self.send(message.src, "pong")


class TestOperationScopes:
    def _net(self):
        net = SimNetwork(rng=random.Random(0))
        net.attach(Echo("a"))
        net.attach(Echo("b"))
        return net

    def test_scope_tags_sends_and_replies(self):
        net = self._net()
        net.metrics.begin_operation("op")
        with net.operation("op"):
            net.node("a").send("b", "ping")
        net.loop.run_until_idle()
        # ping + the pong sent while handling the tagged delivery
        assert net.metrics.end_operation("op") == 2

    def test_untracked_tags_are_not_counted(self):
        net = self._net()
        with net.operation("never-registered"):
            net.node("a").send("b", "ping")
        net.loop.run_until_idle()
        assert net.metrics.operations == {}

    def test_unscoped_traffic_is_unattributed(self):
        net = self._net()
        net.metrics.begin_operation("op")
        net.node("a").send("b", "ping")  # outside any scope
        net.loop.run_until_idle()
        assert net.metrics.end_operation("op") == 0

    def test_innermost_scope_wins(self):
        net = self._net()
        net.metrics.begin_operation("outer")
        net.metrics.begin_operation("inner")
        with net.operation("outer"):
            with net.operation("inner"):
                net.node("a").send("b", "ping")
        net.loop.run_until_idle()
        assert net.metrics.end_operation("inner") == 2
        assert net.metrics.end_operation("outer") == 0

    def test_concurrent_operations_stay_separate(self):
        net = self._net()
        net.metrics.begin_operation("one")
        net.metrics.begin_operation("two")
        with net.operation("one"):
            net.node("a").send("b", "ping")
        with net.operation("two"):
            net.node("b").send("a", "ping")
            net.node("b").send("a", "ping")
        net.loop.run_until_idle()
        assert net.metrics.end_operation("one") == 2
        assert net.metrics.end_operation("two") == 4


def deploy(seed=5):
    net = GridVineNetwork.build(num_peers=16, seed=seed, replication=2)
    embl = Schema("EMBL", ["Organism"], domain="d")
    emp = Schema("EMP", ["SystematicName"], domain="d")
    net.insert_schema(embl)
    net.insert_schema(emp)
    net.insert_triples([
        Triple(URI(f"EMBL:{i}"), URI("EMBL#Organism"),
               Literal(f"Aspergillus {i}"))
        for i in range(6)
    ] + [
        Triple(URI("EMP:9"), URI("EMP#SystematicName"),
               Literal("Aspergillus 9")),
    ])
    net.create_mapping(embl, emp, [("Organism", "SystematicName")],
                       origin=net.peer_ids()[0])
    net.settle()
    return net


QUERY = "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"


class TestQueryMessageAttribution:
    def test_messages_invariant_to_background_traffic(self):
        """The same query reports the same message count whether or
        not maintenance traffic floods the network around it."""
        quiet = deploy()
        quiet_outcome = quiet.search_for(QUERY, strategy="iterative",
                                         origin=quiet.peer_ids()[1])

        busy = deploy()
        maintenance = MaintenanceProcess(busy.peers, interval=5.0,
                                         rng=random.Random(9))
        maintenance.start()
        busy.loop.run_until(busy.loop.now + 60.0)
        before = busy.network.metrics.messages_sent
        busy_outcome = busy.search_for(QUERY, strategy="iterative",
                                       origin=busy.peer_ids()[1])
        global_delta = busy.network.metrics.messages_sent - before
        maintenance.stop()

        assert quiet_outcome.messages > 0
        assert busy_outcome.messages == quiet_outcome.messages
        # The historical delta accounting would have billed the
        # background traffic to the query.
        assert global_delta > busy_outcome.messages

    def test_all_strategies_report_positive_counts(self):
        net = deploy()
        for strategy in ("local", "iterative", "recursive"):
            outcome = net.search_for(QUERY, strategy=strategy,
                                     origin=net.peer_ids()[1])
            assert outcome.messages > 0, strategy

    def test_engine_batch_messages_invariant_to_background_traffic(self):
        quiet = deploy()
        quiet_result = quiet.create_engine(domain="d").execute_batch(
            [QUERY], origin=quiet.peer_ids()[1])

        busy = deploy()
        maintenance = MaintenanceProcess(busy.peers, interval=5.0,
                                         rng=random.Random(9))
        maintenance.start()
        busy.loop.run_until(busy.loop.now + 60.0)
        busy_result = busy.create_engine(domain="d").execute_batch(
            [QUERY], origin=busy.peer_ids()[1])
        maintenance.stop()

        assert quiet_result.messages > 0
        assert busy_result.messages == quiet_result.messages

    def test_tracked_operation_counters_do_not_leak(self):
        net = deploy()
        net.search_for(QUERY, strategy="iterative",
                       origin=net.peer_ids()[1])
        net.create_engine(domain="d").search_for(
            QUERY, origin=net.peer_ids()[1])
        assert net.network.metrics.operations == {}

    def test_tracked_counters_do_not_leak_on_kickoff_error(self):
        """A query that raises during kickoff (unroutable pattern)
        must still pop its tracked counter."""
        net = deploy()
        with pytest.raises(Exception):
            net.search_for("SearchFor(x? : (x?, y?, z?))",
                           origin=net.peer_ids()[1])
        assert net.network.metrics.operations == {}
