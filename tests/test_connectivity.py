"""Tests for the connectivity indicator and ground-truth analysis."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity.analysis import (
    giant_scc_fraction,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.connectivity.indicator import (
    connectivity_indicator,
    indicator_from_degrees,
    is_fragmented,
)


class TestIndicator:
    def test_two_cycle_is_critical(self):
        # A <-> B: every node has j=k=1, ci = (1*1 - 1) * 1 = 0.
        assert indicator_from_degrees([(1, 1), (1, 1)]) == 0.0

    def test_single_edge_is_fragmented(self):
        assert indicator_from_degrees([(0, 1), (1, 0)]) == -0.5
        assert is_fragmented([(0, 1), (1, 0)])

    def test_empty_is_zero(self):
        assert indicator_from_degrees([]) == 0.0
        assert connectivity_indicator({}) == 0.0

    def test_isolated_schemas_push_negative(self):
        connected = [(1, 1)] * 4
        with_isolated = connected + [(0, 0)] * 4
        assert (indicator_from_degrees(with_isolated)
                <= indicator_from_degrees(connected))

    def test_dense_graph_is_positive(self):
        # every schema has in=out=3
        assert indicator_from_degrees([(3, 3)] * 8) > 0

    def test_matches_formula_by_hand(self):
        # p table: (1,2) w.p. 0.5, (2,0) w.p. 0.25, (0,1) w.p. 0.25
        p = {(1, 2): 0.5, (2, 0): 0.25, (0, 1): 0.25}
        expected = (1 * 2 - 2) * 0.5 + (2 * 0 - 0) * 0.25 + (0 * 1 - 1) * 0.25
        assert connectivity_indicator(p) == pytest.approx(expected)

    def test_sign_tracks_giant_component_in_random_digraphs(self):
        # Directed Erdos-Renyi: giant SCC appears around mean degree 1.
        rng = random.Random(7)
        n = 400

        def sample(mean_degree):
            edges = set()
            target = int(mean_degree * n)
            while len(edges) < target:
                a, b = rng.randrange(n), rng.randrange(n)
                if a != b:
                    edges.add((a, b))
            degrees = {i: [0, 0] for i in range(n)}
            adjacency = {str(i): [] for i in range(n)}
            for a, b in edges:
                degrees[a][1] += 1
                degrees[b][0] += 1
                adjacency[str(a)].append(str(b))
            ci = indicator_from_degrees(
                [(j, k) for j, k in degrees.values()])
            return ci, giant_scc_fraction(adjacency)

        ci_sparse, giant_sparse = sample(0.4)
        ci_dense, giant_dense = sample(2.5)
        assert ci_sparse < 0 and giant_sparse < 0.05
        assert ci_dense > 0 and giant_dense > 0.4


class TestTarjan:
    def test_simple_cycle(self):
        sccs = strongly_connected_components(
            {"a": ["b"], "b": ["a"], "c": []})
        assert sorted(len(c) for c in sccs) == [1, 2]

    def test_empty_graph(self):
        assert strongly_connected_components({}) == []

    def test_self_loop_free_singletons(self):
        sccs = strongly_connected_components({"a": [], "b": []})
        assert len(sccs) == 2

    def test_nested_components(self):
        graph = {
            "a": ["b"], "b": ["c"], "c": ["a"],  # triangle
            "d": ["e"], "e": ["d"],              # 2-cycle
            "f": ["a"],                           # pendant into triangle
        }
        sccs = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in sccs)
        assert sizes == [1, 2, 3]

    def test_largest_first_ordering(self):
        graph = {"a": ["b"], "b": ["a"], "c": ["d"], "d": ["e"],
                 "e": ["c"]}
        sccs = strongly_connected_components(graph)
        assert len(sccs[0]) == 3

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        graph = {str(i): [str(i + 1)] for i in range(n)}
        graph[str(n)] = []
        sccs = strongly_connected_components(graph)
        assert len(sccs) == n + 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60))
    def test_matches_networkx(self, edge_list):
        graph: dict[str, list[str]] = {}
        nxg = nx.DiGraph()
        for a, b in edge_list:
            graph.setdefault(str(a), []).append(str(b))
            nxg.add_edge(str(a), str(b))
        ours = {frozenset(c) for c in strongly_connected_components(graph)}
        theirs = {frozenset(c)
                  for c in nx.strongly_connected_components(nxg)}
        assert ours == theirs


class TestWeakComponents:
    def test_direction_ignored(self):
        comps = weakly_connected_components({"a": ["b"], "c": []})
        assert sorted(len(c) for c in comps) == [1, 2]

    def test_chain_is_one_component(self):
        comps = weakly_connected_components(
            {"a": ["b"], "b": ["c"], "c": []})
        assert len(comps) == 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60))
    def test_matches_networkx(self, edge_list):
        graph: dict[str, list[str]] = {}
        nxg = nx.Graph()
        for a, b in edge_list:
            graph.setdefault(str(a), []).append(str(b))
            nxg.add_edge(str(a), str(b))
        ours = {frozenset(c) for c in weakly_connected_components(graph)}
        theirs = {frozenset(c) for c in nx.connected_components(nxg)}
        assert ours == theirs


class TestGiantFraction:
    def test_empty(self):
        assert giant_scc_fraction({}) == 0.0

    def test_full_cycle(self):
        graph = {str(i): [str((i + 1) % 5)] for i in range(5)}
        assert giant_scc_fraction(graph) == 1.0

    def test_dag_fraction(self):
        graph = {"a": ["b"], "b": ["c"], "c": []}
        assert giant_scc_fraction(graph) == pytest.approx(1 / 3)
