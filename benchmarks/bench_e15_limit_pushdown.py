"""E15 (extension) — limit pushdown: messages saved by early stop.

The streaming operator runtime pushes a query's result limit *into*
distributed execution: a satisfied ``Limit`` cooperatively cancels the
pipeline's remaining pattern fetches and reformulation fan-out
(``repro.exec``), instead of truncating rows after a full fan-out.
This bench quantifies the savings on the E13-style workload (a chain
of mapped schemas, each contributing matching rows): the *same* query
is run unlimited and with ``limit=10`` on identically seeded
deployments, for both the iterative strategy (overlay-driven
reformulation) and the engine (cached plans, wave-staged shared
scans).  The series is per-seed exact per-query messages (per-
operation attribution, invariant to background traffic).

Headline claim: ``limit=10`` costs >= 3x fewer messages than
unlimited on every seed, for both execution paths, while still
returning 10 correct rows.
"""

from conftest import report, run_once
from record import measure, record

from repro import GridVineNetwork, Literal, Schema, Triple, URI

#: each schema holds this many matching rows, so the limit of 10 is
#: satisfiable from the first key space alone and every further
#: reformulation is avoidable work
MATCHES_PER_SCHEMA = 12

QUERY = "SearchFor(x? : (x?, S0#org, %Aspergillus%))"
LIMIT = 10


def build_corpus(num_schemas, entries_per_schema, seed):
    """A chain of mapped schemas, each with its own data extent."""
    net = GridVineNetwork.build(num_peers=48, seed=seed)
    schemas = [Schema(f"S{i}", ["org", "len"], domain="e15")
               for i in range(num_schemas)]
    for schema in schemas:
        net.insert_schema(schema)
    triples = []
    for i, schema in enumerate(schemas):
        for j in range(entries_per_schema):
            organism = ("Aspergillus" if j < MATCHES_PER_SCHEMA
                        else "Yeast")
            subject = URI(f"{schema.name}:e{j}")
            triples.append(Triple(subject, URI(f"{schema.name}#org"),
                                  Literal(f"{organism}-{i}-{j}")))
            triples.append(Triple(subject, URI(f"{schema.name}#len"),
                                  Literal(str(100 + j))))
    net.insert_triples(triples)
    for a, b in zip(schemas, schemas[1:]):
        net.create_mapping(a, b, [("org", "org"), ("len", "len")],
                           origin=net.peer_ids()[0])
    net.settle()
    return net


def run_pair(mode, num_schemas, entries_per_schema, seed):
    """(unlimited, limited, limited-run net) on twin deployments."""
    outcomes = []
    for limit in (None, LIMIT):
        net = build_corpus(num_schemas, entries_per_schema, seed)
        origin = net.peer_ids()[0]
        if mode == "engine":
            engine = net.create_engine(domain="e15", max_hops=8)
            outcomes.append(engine.search_for(QUERY, origin=origin,
                                              limit=limit))
        else:
            outcomes.append(net.search_for(QUERY, strategy=mode,
                                           max_hops=8, origin=origin,
                                           limit=limit))
    return outcomes[0], outcomes[1], net


def test_e15_limit_pushdown(benchmark, scale):
    seeds = (29, 31, 37) if scale == "quick" else (29, 31, 37, 41, 53)
    num_schemas = 5 if scale == "quick" else 8
    entries = 30 if scale == "quick" else 60

    def run():
        series = []
        metrics = None
        for seed in seeds:
            for mode in ("iterative", "engine"):
                unlimited, limited, net = run_pair(mode, num_schemas,
                                                   entries, seed)
                series.append((seed, mode, unlimited, limited))
                # Registry snapshot of the last limited deployment
                # (deterministic simulation counters; engine view on
                # engine-mode runs).
                metrics = net.registry.snapshot()
        return series, metrics

    (series, metrics), wall = measure(lambda: run_once(benchmark, run))
    record("E15", scale=scale, totals={"wall_clock_s": round(wall, 3)},
           metrics=metrics, runs=[
               {
                   "seed": seed,
                   "mode": mode,
                   "unlimited_messages": unlimited.messages,
                   "limited_messages": limited.messages,
                   "unlimited_rows": unlimited.result_count,
                   "limited_rows": limited.result_count,
                   "fetches_skipped": limited.fetches_skipped,
               }
               for seed, mode, unlimited, limited in series
           ])
    report("E15", f"{len(seeds)} seeds, chain of {num_schemas} mapped "
                  f"schemas, {MATCHES_PER_SCHEMA} matching rows per "
                  f"schema, limit {LIMIT}")
    report("E15", f"{'seed':>4} | {'mode':>9} {'rows':>9} "
                  f"{'messages':>14} {'ratio':>6} {'skipped':>8}")
    for seed, mode, unlimited, limited in series:
        ratio = unlimited.messages / max(1, limited.messages)
        report("E15",
               f"{seed:>4} | {mode:>9} "
               f"{unlimited.result_count:>3}->{limited.result_count:>3}  "
               f"{unlimited.messages:>5} -> {limited.messages:>5} "
               f"{ratio:>5.1f}x {limited.fetches_skipped:>8}")

    for seed, mode, unlimited, limited in series:
        # The limited run returns exactly the cap, flags the early
        # stop, and its rows are a subset of the unlimited answer.
        assert limited.result_count == LIMIT
        assert limited.limit_hit and not unlimited.limit_hit
        assert limited.results <= unlimited.results
        # Headline: >= 3x fewer messages through limit pushdown.
        assert unlimited.messages >= 3 * limited.messages, (
            f"seed {seed} ({mode}): {unlimited.messages} unlimited vs "
            f"{limited.messages} limited messages"
        )
