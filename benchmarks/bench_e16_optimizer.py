"""E16 (extension) — cost-based auto strategy vs static choices.

The statistics subsystem (``repro.stats``) piggybacks per-peer
synopses on maintenance traffic; the optimizer (``repro.optimizer``)
turns them into per-query decisions: ``strategy="auto"`` picks local /
iterative / recursive, prunes zero-yield reformulation fan-out and
orders scans by estimated cardinality.

The workload is deliberately skewed and mixed, so no single static
strategy is good everywhere:

* **chain** queries hit a cleanly mapped schema chain — recursive
  delegation wins (schema-key locality, no schema-space fetches);
* **hub** queries hit a schema whose mapping fan-out is mostly dead
  (mapped ghost schemas holding no data) — iterative with cost-based
  pruning wins, recursive cannot prune;
* **lone** queries hit unmapped schemas — local wins, reformulation
  machinery is pure overhead.

Headline claims, per seed: ``auto`` (warm statistics) sends >= 1.5x
fewer messages than the worst static strategy and is never >10% worse
than the best static one; its result sets are bit-identical to the
unoptimized iterative reference; and synopsis piggybacking adds zero
extra messages (twin deployments with gossip on/off send exactly the
same message count, verified via the metrics' per-kind attribution).
"""

import random

from conftest import report, run_once
from record import measure, record

from repro import GridVineNetwork, Literal, Schema, Triple, URI
from repro.pgrid.maintenance import MaintenanceProcess

#: matching rows per data-bearing schema
MATCHES = 8
#: dead-end mapping targets attached to the hub schema
GHOSTS = 6
#: virtual seconds of maintenance gossip before the workload
WARM_TIME = 500.0

STRATEGIES = ("iterative", "recursive", "auto")


def build_corpus(seed, gossip=True):
    """Chain cluster + ghost-heavy hub cluster + unmapped loners."""
    net = GridVineNetwork.build(num_peers=48, seed=seed, replication=2)
    if not gossip:
        for peer in net.peers.values():
            peer.stats_gossip = False
    chain = [Schema(f"C{i}", ["org", "len"], domain="e16")
             for i in range(3)]
    hub = [Schema(f"H{i}", ["org", "len"], domain="e16")
           for i in range(2)]
    ghosts = [Schema(f"G{i}", ["org", "len"], domain="e16")
              for i in range(GHOSTS)]
    lone = [Schema(f"U{i}", ["org", "len"], domain="e16")
            for i in range(2)]
    for schema in chain + hub + ghosts + lone:
        net.insert_schema(schema)
    triples = []
    for schema in chain + hub + lone:  # ghosts stay empty
        for j in range(MATCHES + 4):
            organism = "Aspergillus" if j < MATCHES else "Yeast"
            subject = URI(f"{schema.name}:e{j}")
            triples.append(Triple(subject, URI(f"{schema.name}#org"),
                                  Literal(f"{organism}-{j}")))
            triples.append(Triple(subject, URI(f"{schema.name}#len"),
                                  Literal(str(100 + j))))
    net.insert_triples(triples)
    origin = net.peer_ids()[0]
    pairs = [("org", "org"), ("len", "len")]
    for a, b in zip(chain, chain[1:]):
        net.create_mapping(a, b, pairs, origin=origin)
        net.create_mapping(b, a, pairs, origin=origin)
    net.create_mapping(hub[0], hub[1], pairs, origin=origin)
    for ghost in ghosts:
        net.create_mapping(hub[0], ghost, pairs, origin=origin,
                           confidence=0.8)
    net.settle()
    return net


def warm(net, seed):
    """Run maintenance so piggybacked gossip converges."""
    maintenance = MaintenanceProcess(net.peers, interval=20.0,
                                     rng=random.Random(seed + 77))
    maintenance.start()
    net.loop.run_until(net.loop.now + WARM_TIME)
    maintenance.stop()
    net.loop.run_until(net.loop.now + 60.0)


def workload():
    """(label, query) pairs — skewed toward the hot chain schema."""
    chain_q = "SearchFor(x? : (x?, C0#org, %Aspergillus%))"
    hub_q = "SearchFor(x? : (x?, H0#org, %Aspergillus%))"
    return (
        [("chain", chain_q)] * 3
        + [("hub", hub_q)] * 2
        + [("lone", f"SearchFor(x? : (x?, U{i}#org, %Aspergillus%))")
           for i in range(2)]
    )


def run_seed(seed):
    """Measure every strategy on identically warmed deployments."""
    # Zero-extra-message claim: identical maintenance windows with
    # gossip on vs off must send exactly the same messages (synopses
    # ride in payloads of traffic that flows anyway).  The per-kind
    # attribution (``Message.op_tag`` feeding ``messages_by_kind``)
    # must match too: gossip may not introduce a single probe, ack,
    # push — or any new message kind — beyond the baseline.
    twin = build_corpus(seed, gossip=False)
    twin_before = dict(twin.network.metrics.messages_by_kind)
    warm(twin, seed)
    twin_by_kind = {
        kind: count - twin_before.get(kind, 0)
        for kind, count in twin.network.metrics.messages_by_kind.items()
    }

    net = build_corpus(seed, gossip=True)
    gossip_before = dict(net.network.metrics.messages_by_kind)
    warm(net, seed)
    gossip_by_kind = {
        kind: count - gossip_before.get(kind, 0)
        for kind, count in net.network.metrics.messages_by_kind.items()
    }

    origin = net.peer_ids()[0]
    per_strategy = {}
    for strategy in STRATEGIES:
        outcomes = []
        for label, query in workload():
            outcomes.append((label, net.search_for(
                query, strategy=strategy, max_hops=8, origin=origin)))
        per_strategy[strategy] = outcomes
    coverage = len(net.peer(origin).synopses)
    return {
        "twin_by_kind": twin_by_kind,
        "gossip_by_kind": gossip_by_kind,
        "coverage": coverage,
        "peers": len(net.peers),
        "outcomes": per_strategy,
    }


def test_e16_optimizer(benchmark, scale):
    seeds = (17, 23, 31) if scale == "quick" else (17, 23, 31, 43, 59)

    def run():
        return [(seed, run_seed(seed)) for seed in seeds]

    series, wall = measure(lambda: run_once(benchmark, run))
    baseline_runs = []
    for seed, data in series:
        totals = {
            strategy: sum(o.messages for _l, o in outcomes)
            for strategy, outcomes in data["outcomes"].items()
        }
        pruned = sum(o.decision.reformulations_pruned
                     for _l, o in data["outcomes"]["auto"])
        rows = sum(o.result_count for _l, o in data["outcomes"]["auto"])
        baseline_runs.append({
            "seed": seed,
            "iterative_messages": totals["iterative"],
            "recursive_messages": totals["recursive"],
            "auto_messages": totals["auto"],
            "auto_rows": rows,
            "reformulations_pruned": pruned,
            "synopsis_coverage": data["coverage"],
        })
    record("E16", scale=scale, totals={"wall_clock_s": round(wall, 3)},
           runs=baseline_runs)
    report("E16", f"{len(seeds)} seeds, workload: 3x chain + 2x hub "
                  f"({GHOSTS} dead mapping targets) + 2x lone")
    report("E16", f"{'seed':>4} | {'iterative':>9} {'recursive':>9} "
                  f"{'auto':>6} | {'auto picks':<28} {'pruned':>6}")
    for seed, data in series:
        totals = {
            strategy: sum(o.messages for _l, o in outcomes)
            for strategy, outcomes in data["outcomes"].items()
        }
        picks: dict = {}
        pruned = 0
        for _label, outcome in data["outcomes"]["auto"]:
            chosen = outcome.decision.strategy
            picks[chosen] = picks.get(chosen, 0) + 1
            pruned += outcome.decision.reformulations_pruned
        picks_text = ", ".join(f"{count}x {name}"
                               for name, count in sorted(picks.items()))
        report("E16", f"{seed:>4} | {totals['iterative']:>9} "
                      f"{totals['recursive']:>9} {totals['auto']:>6} "
                      f"| {picks_text:<28} {pruned:>6}")

    for seed, data in series:
        # Piggybacking is free: gossip on/off, same maintenance
        # window, same per-kind message counts (and in particular no
        # dedicated statistics messages like stats_pull/stats_push).
        assert data["gossip_by_kind"] == data["twin_by_kind"], (
            f"seed {seed}: gossip changed maintenance traffic "
            f"({data['gossip_by_kind']} vs {data['twin_by_kind']})"
        )
        assert "stats_pull" not in data["gossip_by_kind"]
        assert "stats_push" not in data["gossip_by_kind"]
        # Statistics actually converged before the workload ran.
        assert data["coverage"] >= data["peers"] - 2

        outcomes = data["outcomes"]
        for (_, auto), (_, reference) in zip(outcomes["auto"],
                                             outcomes["iterative"]):
            # Optimization never changes answers: bit-identical to the
            # unoptimized full-reformulation reference.
            assert auto.results == reference.results
            assert auto.decision is not None
            assert not auto.decision.fallback
        picks = {o.decision.strategy for _l, o in outcomes["auto"]}
        assert "local" in picks  # lone queries skip reformulation
        assert picks & {"iterative", "recursive"}  # mapped ones don't

        totals = {
            strategy: sum(o.messages for _l, o in outs)
            for strategy, outs in outcomes.items()
        }
        static = [totals["iterative"], totals["recursive"]]
        worst, best = max(static), min(static)
        assert worst >= 1.5 * totals["auto"], (
            f"seed {seed}: worst static {worst} not >= 1.5x auto "
            f"{totals['auto']}"
        )
        assert totals["auto"] <= 1.1 * best, (
            f"seed {seed}: auto {totals['auto']} more than 10% worse "
            f"than best static {best}"
        )
