"""E19 — sharded mediation: GridVine queries through ShardedTransport.

E18 ported the raw P-Grid retrieve workload onto the sharded engine;
this experiment ports the *mediation layer*.  One GridVine deployment —
generated corpus, ground-truth mapping chain (both directions),
``SearchFor`` query waves plus one engine batch per wave — runs
unchanged on the single-loop transport and on the sharded transport at
1, 2 and 4 shards, inline and forked.

The headline claim is stronger than E18's: with ``refs_per_level=1``
and ``replication=1`` the query path makes no consequential rng draws,
so every engine configuration produces **bit-identical per-query
outcomes** — success flags, result rows, reformulation counts and the
*exact* attributed message count per query (attribution tags follow
causal chains across shard boundaries).  The assertions compare the
full outcome dicts, not just aggregates.

Wall-clock is best-of-N with the cyclic GC paused during timed runs
(same harness as E18).  ``REPRO_BENCH_E19_PEERS`` overrides the peer
count (CI's scale-smoke job runs a bounded configuration).
"""

import gc
import os

from conftest import report, run_once
from record import record

from repro.pgrid.scaleout import (
    ScaleoutSpec,
    build_deployment,
    run_inprocess,
    run_sharded,
)


def _spec(scale, num_shards=4, mode="inline"):
    peers = int(os.environ.get("REPRO_BENCH_E19_PEERS", "0"))
    if not peers:
        peers = 2_000 if scale == "full" else 300
    quick = peers < 1_000
    return ScaleoutSpec(
        num_peers=peers,
        replication=1,
        refs_per_level=1,
        seed=3,
        num_shards=num_shards,
        mode=mode,
        workload="mediation",
        num_schemas=4 if quick else 6,
        num_entities=60 if quick else 120,
        entities_per_schema=20 if quick else 30,
        ops_per_wave=8 if quick else 20,
        num_waves=2 if quick else 3,
        batch_queries=3,
    )


def _timed(run, repeats):
    """Best-of-``repeats`` with the cyclic GC paused during each run."""
    best, walls = None, []
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            result = run()
        finally:
            gc.enable()
        walls.append(result.wall_clock_s)
        if best is None or result.wall_clock_s < best.wall_clock_s:
            best = result
    return best, walls


def test_e19_sharded_mediation(benchmark, scale):
    repeats = 3 if scale == "full" else 2
    shard_counts = (1, 2, 4)

    def run():
        deployment = build_deployment(_spec(scale))
        rows = {}
        rows["inprocess"] = _timed(
            lambda: run_inprocess(_spec(scale), deployment), repeats)
        for shards in shard_counts:
            spec = _spec(scale, num_shards=shards)
            rows[f"sharded{shards}"] = _timed(
                lambda: run_sharded(spec, deployment), repeats)
        # One forked-workers run: pipes, pickling and per-shard stats
        # merging on the full mediation stack (timed once — fork cost
        # is startup, not steady-state).
        forked_spec = _spec(scale, num_shards=2, mode="process")
        rows["forked2"] = _timed(
            lambda: run_sharded(forked_spec, deployment), 1)
        return rows

    rows = run_once(benchmark, run)

    spec = _spec(scale)
    report("E19", f"{spec.num_peers} peers, {spec.num_waves} waves x "
                  f"{spec.ops_per_wave} SearchFor + {spec.batch_queries}"
                  f"-query engine batch, best of {repeats}")
    report("E19", f"{'engine':>10} {'wall s':>8} {'success':>8} "
                  f"{'rows':>6} {'refos':>6} {'q msgs':>8} {'rss MB':>7}")
    recorded = []
    for label, (best, walls) in rows.items():
        report("E19",
               f"{label:>10} {best.wall_clock_s:>8.3f} "
               f"{best.successes:>8} {best.rows_returned:>6} "
               f"{best.reformulations:>6} {best.query_messages:>8} "
               f"{best.peak_rss_kb / 1024:>7.0f}")
        summary = best.summary()
        summary.update(label=label,
                       wall_clock_runs_s=[round(w, 3) for w in walls])
        recorded.append(summary)
    record("E19", scale=scale, runs=recorded,
           totals={"num_peers": spec.num_peers, "repeats": repeats,
                   "shard_counts": list(shard_counts)})

    # The acceptance bar: identical per-query outcomes — success flags,
    # result rows, reformulations and exact per-query message counts —
    # on every engine configuration, forked workers included.
    baseline = rows["inprocess"][0]
    assert baseline.ops_completed == baseline.ops_issued > 0
    assert baseline.successes > 0 and baseline.rows_returned > 0
    for label, (best, _walls) in rows.items():
        assert best.outcomes == baseline.outcomes, label
        assert best.query_messages == baseline.query_messages, label
