"""Profile one E-experiment's workload: where do the cycles go?

Runs a benchmark module's test function outside pytest — the
pytest-benchmark timer is replaced by a stub that executes the
workload exactly once — under the shared cProfile harness
(:mod:`repro.util.profiling`), and prints the top-N functions.  The
same harness backs the CLI's ``--profile`` flag, so a bench profile
and a ``python -m repro query --profile`` run are directly
comparable.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/profile.py E13
    PYTHONPATH=src python benchmarks/profile.py E15 --sort tottime --top 30
    PYTHONPATH=src python benchmarks/profile.py E18 --scale full

Baselines written during a profiled run land in ``benchmarks/out/``
like any other uncommitted run (see :mod:`record`); profiling never
touches the committed BENCH files.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys

# This filename shadows the stdlib ``profile`` module that cProfile
# imports.  Searching this directory *last* lets ``import profile``
# resolve to the stdlib while the bench modules (which exist nowhere
# else) still import fine.
_HERE = os.path.dirname(os.path.abspath(__file__))
if sys.path and os.path.abspath(sys.path[0]) == _HERE:
    sys.path.append(sys.path.pop(0))

from repro.util.profiling import (  # noqa: E402
    DEFAULT_TOP,
    SORT_KEYS,
    profile_call,
)

#: experiment id -> benchmark module (import name, benchmarks/ dir)
EXPERIMENTS = {
    "E1": "bench_e1_reformulation",
    "E2": "bench_e2_latency_cdf",
    "E3": "bench_e3_connectivity",
    "E4": "bench_e4_recall_growth",
    "E5": "bench_e5_deprecation",
    "E6": "bench_e6_routing_scaling",
    "E7": "bench_e7_index_fanout",
    "E8": "bench_e8_strategies",
    "E9": "bench_e9_matcher",
    "E10": "bench_e10_construction",
    "E11": "bench_e11_range_queries",
    "E12": "bench_e12_join_modes",
    "E13": "bench_e13_plan_cache",
    "E14": "bench_e14_churn_recall",
    "E15": "bench_e15_limit_pushdown",
    "E16": "bench_e16_optimizer",
    "E17": "bench_e17_partition_recall",
    "E18": "bench_e18_scaleout",
}


class _OnceBenchmark:
    """pytest-benchmark stand-in: runs the workload exactly once."""

    def pedantic(self, fn, args=(), kwargs=None, **_timer_options):
        return fn(*args, **(kwargs or {}))

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)


def find_test(module) -> object:
    """The single ``test_*`` callable of a benchmark module."""
    tests = [getattr(module, name) for name in dir(module)
             if name.startswith("test_")]
    if len(tests) != 1:
        raise SystemExit(f"{module.__name__} defines {len(tests)} "
                         f"test functions, expected exactly 1")
    return tests[0]


def profile_experiment(experiment: str, *, scale: str,
                       top: int = DEFAULT_TOP,
                       sort: str = "cumulative") -> str:
    """Run one experiment under cProfile; returns the report text."""
    module = importlib.import_module(EXPERIMENTS[experiment])
    test = find_test(module)
    _result, report = profile_call(
        lambda: test(_OnceBenchmark(), scale), top=top, sort=sort)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile one E-experiment workload (top-N hot "
                    "functions)")
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS,
                        key=lambda e: int(e[1:])),
                        help="which benchmark to run under cProfile")
    parser.add_argument("--scale", default="quick",
                        choices=["quick", "full"],
                        help="workload scale (default: quick)")
    parser.add_argument("--top", type=int, default=DEFAULT_TOP,
                        help=f"rows to print (default: {DEFAULT_TOP})")
    parser.add_argument("--sort", default="cumulative",
                        choices=list(SORT_KEYS),
                        help="pstats sort order (default: cumulative)")
    options = parser.parse_args(argv)
    print(f"profiling {options.experiment} "
          f"({EXPERIMENTS[options.experiment]}, scale "
          f"{options.scale}) ...")
    report = profile_experiment(options.experiment, scale=options.scale,
                                top=options.top, sort=options.sort)
    print(report.rstrip())
    return 0


if __name__ == "__main__":
    sys.exit(main())
