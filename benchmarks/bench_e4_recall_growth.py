"""E4 — §4: recall grows as mappings are created automatically.

Paper claim: "In a sparse network of mappings, few results get
returned initially (low recall), while more and more results are
retrieved as mappings get created automatically to ensure the global
interoperability of the system."

Reproduction: deploy the bioinformatic corpus with one seed mapping,
run self-organization rounds, and after each round measure recall of
a fixed panel of semantic queries (ground truth known from the
generator).  The series is (round, ci, #mappings, recall).
"""

from conftest import report, run_once

from repro import GridVineNetwork
from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
from repro.resilience.scenario import recall_hits
from repro.selforg import CreationPolicy, SelfOrganizationController


def build(scale):
    num_schemas = 10 if scale == "quick" else 20
    dataset = BioDatasetGenerator(
        num_schemas=num_schemas,
        num_entities=120,
        entities_per_schema=30,
        seed=42,
    ).generate()
    net = GridVineNetwork.build(num_peers=100, seed=42, replication=2)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    # Manual seed mappings pair the schemas off (S0->S1, S2->S3, ...):
    # every schema touches a mapping (as the paper requires at schema
    # insertion) but the graph is far from strongly connected, so the
    # indicator starts negative and recall from S0's vocabulary is low.
    names = [s.name for s in dataset.schemas]
    for i in range(0, len(names) - 1, 2):
        net.insert_mapping(
            dataset.ground_truth_mapping(names[i], names[i + 1]))
    net.settle()
    return net, dataset


def query_panel(dataset):
    """Semantic queries posed in the first schema's vocabulary, with
    full-corpus ground truth per query."""
    workload = QueryWorkloadGenerator(dataset, seed=7)
    panel = []
    for needle in ("Aspergillus", "Saccharomyces", "Escherichia"):
        query = workload.concept_query(dataset.schemas[0].name,
                                       "organism", needle)
        truth = {
            f"{schema.name}:{entity.accession}"
            for schema in dataset.schemas
            for entity in dataset.coverage[schema.name]
            if needle in entity.value("organism")
        }
        panel.append((query, truth))
    return panel


def measure_recall(net, panel):
    found = total = 0
    for query, truth in panel:
        outcome = net.search_for(query, strategy="iterative", max_hops=10)
        hits = recall_hits(outcome)
        found += len(hits & truth)
        total += len(truth)
    return found / total if total else 1.0


def test_e4_recall_growth(benchmark, scale):
    net, dataset = build(scale)
    panel = query_panel(dataset)
    controller = SelfOrganizationController(
        net, domain=dataset.domain,
        # directed creation: the graph densifies gradually, so the
        # recall series has several points before ci crosses zero
        policy=CreationPolicy(mappings_per_round=3, bidirectional=False),
    )

    def run():
        series = []
        ci = net.connectivity_indicator(dataset.domain)
        mappings = len(net.mapping_graph(dataset.domain).mappings())
        series.append((-1, ci, mappings, measure_recall(net, panel)))
        for round_index in range(12):
            report_round = controller.step()
            recall = measure_recall(net, panel)
            mappings = len(net.mapping_graph(dataset.domain).mappings())
            series.append((round_index, report_round.ci_after,
                           mappings, recall))
            if (report_round.ci_after >= 0 and not report_round.created
                    and not report_round.deprecated):
                break
        return series

    series = run_once(benchmark, run)
    report("E4", f"{len(dataset.schemas)} schemas, "
                 f"{len(dataset.triples)} triples, "
                 f"panel of {len(query_panel(dataset))} semantic queries")
    report("E4", f"{'round':>6} {'ci':>8} {'mappings':>9} {'recall':>8}")
    for round_index, ci, mappings, recall in series:
        label = "seed" if round_index < 0 else str(round_index)
        report("E4", f"{label:>6} {ci:>+8.3f} {mappings:>9} {recall:>7.1%}")

    initial_recall = series[0][3]
    final_recall = series[-1][3]
    # Shape: recall starts low and grows substantially; ci ends >= 0.
    assert initial_recall < 0.5
    assert final_recall > initial_recall + 0.2
    assert series[-1][1] >= 0
