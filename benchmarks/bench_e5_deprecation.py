"""E5 — §3.2/§4: erroneous mappings get deprecated and replaced.

Paper claims: "A mapping detected as incorrect is marked as deprecated
in the system, and is from then on ignored"; "Removing some of the
existing mappings fosters the creation of additional mappings, some of
which get deprecated by the Bayesian analysis and are gradually
replaced by other mapping paths."

Reproduction, two parts:

1. *Detection quality*: inject a controlled mix of correct and
   corrupted automatic mappings into a user-mapping backbone; run the
   Bayesian cycle analysis; report precision/recall of deprecation
   across thresholds (the DESIGN.md ablation).
2. *Replacement dynamics*: deprecate mappings in a live network and
   count controller rounds until connectivity recovers through other
   paths.
"""

import random

from conftest import report, run_once

from repro.mapping.graph import MappingGraph
from repro.selforg.deprecation import (
    DeprecationConfig,
    assess_mapping_quality,
)


def build_evaluation_graph(dataset, num_bad, num_good, rng):
    """A bidirectional user ring + automatic mappings, some corrupted.

    Auto mappings are injected between schemas at ring distance <= 3 so
    every injected edge closes at least one short cycle through the
    user backbone — without such cycles the analysis has no evidence
    and correctly leaves the mapping at its prior (tested separately in
    the unit suite).
    """
    names = [s.name for s in dataset.schemas]
    n = len(names)
    graph = MappingGraph()
    for i in range(n):
        mapping = dataset.ground_truth_mapping(
            names[i], names[(i + 1) % n],
            mapping_id=f"user:{i}", provenance="user")
        graph.add(mapping)
        graph.add(mapping.reversed(f"user:{i}~rev"))
    truth: dict[str, bool] = {}
    pairs = []
    for i in range(n):
        for distance in (2, 3):
            pairs.append((names[i], names[(i + distance) % n]))
    rng.shuffle(pairs)
    good_added = bad_added = 0
    for a, b in pairs:
        if len(dataset.ground_truth_pairs(a, b)) < 2:
            continue
        if good_added < num_good:
            mid = f"auto:good:{a}->{b}"
            graph.add(dataset.ground_truth_mapping(
                a, b, mapping_id=mid, provenance="auto"))
            truth[mid] = True
            good_added += 1
        elif bad_added < num_bad:
            mid = f"auto:bad:{a}->{b}"
            graph.add(dataset.corrupted_mapping(a, b, rng, mapping_id=mid))
            truth[mid] = False
            bad_added += 1
        if good_added >= num_good and bad_added >= num_bad:
            break
    return graph, truth


def test_e5_deprecation_precision_recall(benchmark, scale):
    from repro.datagen import BioDatasetGenerator
    dataset = BioDatasetGenerator(
        num_schemas=8, num_entities=100, entities_per_schema=30,
        concepts_per_schema=(8, 12), seed=17,
    ).generate()
    rng = random.Random(17)
    graph, truth = build_evaluation_graph(dataset, num_bad=5, num_good=5,
                                          rng=rng)

    def run():
        rows = []
        for threshold in (0.15, 0.35, 0.5, 0.65):
            config = DeprecationConfig(threshold=threshold)
            beliefs = assess_mapping_quality(graph, config)
            flagged = {mid for mid, correct in truth.items()
                       if beliefs[mid] < threshold}
            actually_bad = {mid for mid, ok in truth.items() if not ok}
            tp = len(flagged & actually_bad)
            precision = tp / len(flagged) if flagged else 1.0
            recall = tp / len(actually_bad) if actually_bad else 1.0
            rows.append((threshold, precision, recall, len(flagged)))
        return rows, assess_mapping_quality(graph)

    rows, beliefs = run_once(benchmark, run)
    report("E5", f"{sum(1 for ok in truth.values() if not ok)} corrupted + "
                 f"{sum(1 for ok in truth.values() if ok)} correct "
                 f"auto mappings on a user backbone")
    report("E5", f"{'threshold':>10} {'precision':>10} {'recall':>8} "
                 f"{'flagged':>8}")
    for threshold, precision, recall, flagged in rows:
        report("E5", f"{threshold:>10.2f} {precision:>10.1%} "
                     f"{recall:>8.1%} {flagged:>8}")
    mean_good = sum(beliefs[mid] for mid, ok in truth.items() if ok) / 5
    mean_bad = sum(beliefs[mid] for mid, ok in truth.items() if not ok) / 5
    report("E5", f"mean posterior: correct autos {mean_good:.2f}, "
                 f"corrupted autos {mean_bad:.2f}")

    # Shape: at the default threshold, deprecation is near-perfect.
    _t, precision, recall, _f = rows[1]
    assert precision >= 0.8
    assert recall >= 0.8
    assert mean_good > mean_bad + 0.3


def test_e5_replacement_after_deprecation(benchmark):
    from repro.datagen import BioDatasetGenerator
    from repro.mediation.network import GridVineNetwork
    from repro.selforg import CreationPolicy, SelfOrganizationController

    dataset = BioDatasetGenerator(
        num_schemas=8, num_entities=80, entities_per_schema=25, seed=23,
    ).generate()
    net = GridVineNetwork.build(num_peers=48, seed=23)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    net.insert_mapping(
        dataset.ground_truth_mapping(dataset.schemas[0].name,
                                     dataset.schemas[1].name),
        bidirectional=True)
    net.settle()
    controller = SelfOrganizationController(
        net, domain=dataset.domain,
        policy=CreationPolicy(mappings_per_round=4))
    controller.run(max_rounds=8)

    def run():
        graph = net.mapping_graph(dataset.domain)
        autos = [m for m in graph.mappings()
                 if m.provenance == "auto"][:4]
        for mapping in autos:
            net.remove_mapping(mapping)
        net.settle()
        ci_after_removal = net.connectivity_indicator(dataset.domain)
        rounds_to_recover = 0
        for _ in range(10):
            round_report = controller.step()
            rounds_to_recover += 1
            if round_report.ci_after >= 0:
                break
        return len(autos), ci_after_removal, rounds_to_recover, \
            net.connectivity_indicator(dataset.domain)

    removed, ci_broken, rounds, ci_final = run_once(benchmark, run)
    report("E5", f"removed {removed} mappings -> ci {ci_broken:+.3f}; "
                 f"recovered to ci {ci_final:+.3f} "
                 f"in {rounds} round(s)")
    assert ci_final >= 0
