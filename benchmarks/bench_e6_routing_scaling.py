"""E6 — §2.1/§2.3: ``Retrieve(key)`` costs O(log |Pi|) messages.

Paper claim: "Retrieve(key) is intuitively efficient, i.e.,
O(log(|Pi|)), measured in terms of the number of messages required for
resolving a search request, for both balanced and unbalanced trees."

Reproduction: sweep network sizes 2^4 .. 2^10, measure mean and p95
hop counts of retrieves from random origins to random keys, for (a)
balanced tries and (b) unbalanced tries shaped by a skewed key sample.
The series shows hops growing like log2(n) in both cases.
"""

import math
import random

from conftest import report, run_once

from repro.pgrid.overlay import PGridOverlay
from repro.util.hashing import order_preserving_hash, uniform_hash
from repro.util.stats import mean, percentile


def skewed_sample(count, rng):
    """Keys from a two-letter alphabet: a thin, hot band of key space."""
    return [
        order_preserving_hash("".join(rng.choice("st") for _ in range(10)))
        for _ in range(count)
    ]


def measure_hops(overlay, keys, probes, rng):
    origins = overlay.peer_ids()
    hops = []
    for i in range(probes):
        origin = rng.choice(origins)
        result = overlay.retrieve_sync(origin, keys[i % len(keys)])
        assert result.success
        hops.append(result.hops)
    return hops


def test_e6_hops_scale_logarithmically(benchmark, scale):
    sizes = [16, 32, 64, 128, 256, 512]
    if scale == "full":
        sizes.append(1024)
    probes = 150 if scale == "quick" else 400

    def run():
        rows = []
        for n in sizes:
            rng = random.Random(n)
            # balanced: uniform keys, even trie
            balanced = PGridOverlay.build(n, seed=n)
            keys = [uniform_hash(f"key-{i}") for i in range(50)]
            origin = balanced.peer_ids()[0]
            for i, key in enumerate(keys):
                balanced.update_sync(origin, key, i)
            balanced_hops = measure_hops(balanced, keys, probes, rng)
            # unbalanced: trie shaped by a skewed sample, probed with
            # keys from the same skewed population
            sample = skewed_sample(300, rng)
            unbalanced = PGridOverlay.build(n, key_sample=sample, seed=n)
            skewed_keys = sample[:50]
            origin = unbalanced.peer_ids()[0]
            for i, key in enumerate(skewed_keys):
                unbalanced.update_sync(origin, key, i)
            unbalanced_hops = measure_hops(unbalanced, skewed_keys,
                                           probes, rng)
            rows.append((
                n,
                mean(balanced_hops), percentile(balanced_hops, 95),
                mean(unbalanced_hops), percentile(unbalanced_hops, 95),
                max(unbalanced.trie_depths()),
            ))
        return rows

    rows = run_once(benchmark, run)
    report("E6", f"{'peers':>6} {'log2(n)':>8} "
                 f"{'bal mean':>9} {'bal p95':>8} "
                 f"{'unbal mean':>11} {'unbal p95':>10} {'max depth':>10}")
    for n, bm, bp, um, up, depth in rows:
        report("E6", f"{n:>6} {math.log2(n):>8.1f} {bm:>9.2f} {bp:>8.1f} "
                     f"{um:>11.2f} {up:>10.1f} {depth:>10}")

    # Shape: mean hops bounded by log2(n) and growing with n.
    for n, bal_mean, bal_p95, unbal_mean, unbal_p95, _depth in rows:
        assert bal_mean <= math.log2(n) + 1
        assert bal_p95 <= math.log2(n) + 2
    first, last = rows[0], rows[-1]
    assert last[1] > first[1]          # hops grow with n ...
    growth = (last[1] - first[1]) / (math.log2(last[0])
                                     - math.log2(first[0]))
    assert growth <= 1.5               # ... but only logarithmically


def test_e6_unbalanced_trie_correctness(benchmark):
    """Every retrieve in a deliberately unbalanced trie still resolves
    (the paper's 'for both balanced and unbalanced trees')."""
    rng = random.Random(99)
    sample = skewed_sample(400, rng)
    overlay = PGridOverlay.build(128, key_sample=sample, seed=99)
    depths = overlay.trie_depths()
    origin = overlay.peer_ids()[0]
    keys = sample[:100]
    for i, key in enumerate(keys):
        overlay.update_sync(origin, key, i)

    def run():
        failures = 0
        hops = []
        for i, key in enumerate(keys):
            result = overlay.retrieve_sync(
                overlay.peer_ids()[i % 128], key)
            if not result.success or i not in result.values:
                failures += 1
            hops.append(result.hops)
        return failures, hops

    failures, hops = run_once(benchmark, run)
    report("E6", f"unbalanced trie: depth spread "
                 f"{min(depths)}..{max(depths)}, "
                 f"retrieve failures {failures}/100, "
                 f"mean hops {mean(hops):.2f}")
    assert failures == 0
    assert max(depths) - min(depths) >= 2  # genuinely unbalanced
