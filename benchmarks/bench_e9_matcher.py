"""E9 (ablation) — §4: the automatic matcher's measure combination.

Paper claim: automatic mappings are created "using a combination of
lexicographical measures and set distance measures between the
predicates defined in both schemas".

The ablation quantifies why the *combination* is the right choice:
lexicographic-only matching misses synonym pairs with dissimilar names
(``OS`` vs ``SystematicName``); set-distance-only matching misses
key-like attributes whose value sets barely overlap across sources and
is confused by attributes sharing value domains (organism vs host).
The combined matcher dominates both on F1 against the generator's
ground truth.
"""

import random

from conftest import report, run_once

from repro.datagen import BioDatasetGenerator
from repro.selforg.matcher import MatcherConfig, match_attributes


def value_sets(dataset, schema_name):
    schema = dataset.schema(schema_name)
    sets = {attr: set() for attr in schema.attributes}
    for triple in dataset.triples_by_schema[schema_name]:
        sets[triple.predicate.local_name].add(triple.object.value)
    return sets


CONFIGS = {
    "lexical-only": MatcherConfig(
        lexical_weight=1.0, extensional_weight=0.0,
        strong_extensional=1.1),
    "set-distance-only": MatcherConfig(
        lexical_weight=0.0, extensional_weight=1.0,
        strong_lexical=1.1, threshold=0.5),
    "combined": MatcherConfig(),
}


def test_e9_matcher_ablation(benchmark, scale):
    num_pairs = 15 if scale == "quick" else 60
    dataset = BioDatasetGenerator(
        num_schemas=20, num_entities=200, entities_per_schema=50, seed=29,
    ).generate()
    rng = random.Random(29)
    names = [s.name for s in dataset.schemas]
    pairs = [tuple(rng.sample(names, 2)) for _ in range(num_pairs)]

    def run():
        rows = []
        for label, config in CONFIGS.items():
            tp = fp = fn = 0
            for a, b in pairs:
                found = {
                    (c.source.local_name, c.target.local_name)
                    for c in match_attributes(
                        dataset.schema(a), dataset.schema(b),
                        value_sets(dataset, a), value_sets(dataset, b),
                        config)
                }
                truth = set(dataset.ground_truth_pairs(a, b))
                tp += len(found & truth)
                fp += len(found - truth)
                fn += len(truth - found)
            precision = tp / (tp + fp) if tp + fp else 1.0
            recall = tp / (tp + fn) if tp + fn else 1.0
            f1 = (2 * precision * recall / (precision + recall)
                  if precision + recall else 0.0)
            rows.append((label, precision, recall, f1))
        return rows

    rows = run_once(benchmark, run)
    report("E9", f"{num_pairs} schema pairs, ground truth from the "
                 f"generator's concept map")
    report("E9", f"{'matcher':>18} {'precision':>10} {'recall':>8} "
                 f"{'F1':>6}")
    scores = {}
    for label, precision, recall, f1 in rows:
        scores[label] = f1
        report("E9", f"{label:>18} {precision:>10.1%} {recall:>8.1%} "
                     f"{f1:>6.2f}")

    assert scores["combined"] >= scores["lexical-only"]
    assert scores["combined"] >= scores["set-distance-only"]
    # combination must beat the best single measure, not just tie both
    assert scores["combined"] > min(scores["lexical-only"],
                                    scores["set-distance-only"])
