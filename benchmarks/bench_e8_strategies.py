"""E8 (ablation) — §4: iterative vs recursive reformulation.

Paper claim: "In reformulating queries, we support two approaches:
iterative, where a peer iteratively looks for paths of mappings and
reformulates the query by itself, and recursive, where the successive
reformulations are delegated to intermediate peers."

The paper demonstrates both without comparing them quantitatively;
this ablation fills that in: along mapping chains of length 1..8,
both strategies return identical answers but spend messages and
virtual latency differently — the iterative origin pays a
schema-space retrieve round trip per discovered schema, while the
recursive chain pipelines reformulation with execution.
"""

from conftest import report, run_once

from repro import GridVineNetwork, Literal, Schema, Triple, URI
from repro.simnet import LogNormalWANLatency


def build_chain(length, seed=3):
    net = GridVineNetwork.build(
        num_peers=96, seed=seed,
        latency=LogNormalWANLatency(straggler_prob=0.0),
    )
    schemas = []
    for i in range(length + 1):
        schema = Schema(f"S{i}", [f"org{i}"], domain="chain")
        schemas.append(schema)
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI(f"S{i}:e"), URI(f"S{i}#org{i}"),
                   Literal("Aspergillus")),
        ])
    for i in range(length):
        net.create_mapping(schemas[i], schemas[i + 1],
                           [(f"org{i}", f"org{i + 1}")])
    net.settle()
    return net


def test_e8_strategy_cost_profile(benchmark, scale):
    lengths = [1, 2, 4, 6] if scale == "quick" else [1, 2, 3, 4, 5, 6, 7, 8]

    def run():
        rows = []
        for length in lengths:
            net = build_chain(length)
            row = {"length": length}
            for strategy in ("iterative", "recursive"):
                net.network.metrics.reset()
                outcome = net.search_for(
                    "SearchFor(x? : (x?, S0#org0, %Asp%))",
                    strategy=strategy, max_hops=length + 1)
                row[strategy] = (
                    outcome.result_count,
                    outcome.latency,
                    net.metrics_snapshot()["messages_sent"],
                )
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report("E8", f"{'chain':>6} | {'iter results':>12} {'iter lat':>9} "
                 f"{'iter msgs':>9} | {'rec results':>11} {'rec lat':>8} "
                 f"{'rec msgs':>9}")
    for row in rows:
        it = row["iterative"]
        rec = row["recursive"]
        report("E8", f"{row['length']:>6} | {it[0]:>12} {it[1]:>8.2f}s "
                     f"{it[2]:>9} | {rec[0]:>11} {rec[1]:>7.2f}s "
                     f"{rec[2]:>9}")

    for row in rows:
        # identical answers: every schema on the chain contributes one
        assert row["iterative"][0] == row["recursive"][0] \
            == row["length"] + 1
    # the pipelined recursive strategy wins on latency for long chains
    longest = rows[-1]
    assert longest["recursive"][1] < longest["iterative"][1]
