"""Observability smoke: E13 trace shapes vs committed expectations.

Runs the E13 workload's distinct query shapes over the real E13
corpus (``bench_e13_plan_cache.build_corpus``) with tracing enabled
and compares the resulting trace shapes — span counts, message-span
counts, peers touched — against the committed
``benchmarks/OBS_E13.json``.  The simulation is deterministic, so the
comparison is exact: a count drift means the tracer hooks moved
relative to the metrics attribution gates (or query execution itself
changed), either of which deserves a deliberate baseline re-record.

The script also re-asserts the exact-count invariant inline: every
trace must be a single connected component whose message spans number
exactly the messages the metrics plane attributes to that query.

Usage (CI's ``obs-smoke`` job pairs this with the tracing-off golden
tests, enforcing both halves of the overhead contract in one job)::

    PYTHONPATH=src python benchmarks/obs_smoke.py

Shipping an intentional change to trace shapes::

    REPRO_BENCH_WRITE_BASELINE=1 PYTHONPATH=src \
        python benchmarks/obs_smoke.py

Exit status 0 when the run matches the committed expectations, 1
otherwise (with a per-trace diff).
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
if HERE not in sys.path:
    sys.path.insert(0, HERE)

from bench_e13_plan_cache import build_corpus, workload  # noqa: E402

from repro.obs.analysis import (  # noqa: E402
    connected_components,
    spans_of,
    trace_ids,
)

#: the committed expectations file, next to the BENCH_*.json baselines
BASELINE = os.path.join(HERE, "OBS_E13.json")


def run_traced_workload() -> tuple[dict, list[str]]:
    """(observed payload, invariant violations) for the E13 workload."""
    net = build_corpus()
    tracer = net.install_tracer()
    engine = net.create_engine(domain="e13")
    outcomes = [engine.search_for(query) for query in workload(1)]
    records = net.trace_records()
    traces = trace_ids(records)

    problems: list[str] = []
    if tracer.dropped:
        problems.append(f"tracer dropped {tracer.dropped} record(s)")
    if len(traces) != len(outcomes):
        problems.append(f"{len(outcomes)} queries produced "
                        f"{len(traces)} trace(s)")

    payload: dict = {
        "experiment": "E13-obs",
        "queries": len(outcomes),
        "records": len(records),
        "traces": [],
    }
    for trace, outcome in zip(traces, outcomes):
        spans = spans_of(records, trace)
        message_spans = [s for s in spans if s["kind"] == "message"]
        # The acceptance invariant: one connected trace whose message
        # spans cover every message attributed to the query's op tag.
        if connected_components(spans) != 1:
            problems.append(f"{trace}: trace is not connected")
        if len(message_spans) != outcome.messages:
            problems.append(
                f"{trace}: {len(message_spans)} message span(s) vs "
                f"{outcome.messages} attributed message(s)")
        payload["traces"].append({
            "trace": trace,
            "spans": len(spans),
            "messages": len(message_spans),
            "peers": len({s["peer"] for s in spans}),
        })
    return payload, problems


def diff(expected: dict, observed: dict) -> list[str]:
    """Human-readable field-level differences (empty when equal)."""
    lines: list[str] = []
    for field in ("queries", "records"):
        if expected.get(field) != observed.get(field):
            lines.append(f"{field}: expected {expected.get(field)}, "
                         f"observed {observed.get(field)}")
    want = {t["trace"]: t for t in expected.get("traces", [])}
    have = {t["trace"]: t for t in observed.get("traces", [])}
    for trace in sorted(want.keys() | have.keys()):
        if trace not in have:
            lines.append(f"{trace}: expected but missing from the run")
        elif trace not in want:
            lines.append(f"{trace}: produced but not in expectations")
        elif want[trace] != have[trace]:
            lines.append(f"{trace}: expected {want[trace]}, "
                         f"observed {have[trace]}")
    return lines


def main() -> int:
    observed, problems = run_traced_workload()
    for problem in problems:
        print(f"obs-smoke: INVARIANT {problem}")
    if problems:
        return 1

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE") == "1":
        with open(BASELINE, "w", encoding="utf-8") as handle:
            json.dump(observed, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"obs-smoke: wrote {len(observed['traces'])} trace "
              f"expectation(s) -> {BASELINE}")
        return 0

    try:
        with open(BASELINE, encoding="utf-8") as handle:
            expected = json.load(handle)
    except FileNotFoundError:
        print(f"obs-smoke: no committed expectations at {BASELINE}; "
              f"record them with REPRO_BENCH_WRITE_BASELINE=1")
        return 1

    lines = diff(expected, observed)
    for line in lines:
        print(f"obs-smoke: DIFF {line}")
    if lines:
        print("obs-smoke: failed (an intentional trace-shape change "
              "re-records with REPRO_BENCH_WRITE_BASELINE=1)")
        return 1
    print(f"obs-smoke: {len(observed['traces'])} trace(s), "
          f"{observed['records']} record(s) — all expectations match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
