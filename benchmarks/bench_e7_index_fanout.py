"""E7 (ablation) — §2.2/§2.3: triple indexing and routing-key choice.

Paper claims: a triple insertion triggers exactly three overlay
``Update()`` operations (one per position key); constraint searches on
*any* position resolve with one overlay lookup; and the most specific
constant is used for routing (the predicate in the Fig. 2 example,
because the object is a ``%...%`` pattern).

The bench verifies the 3x fan-out accounting, per-position query
success, and ablates the routing-key choice: routing by LIKE-wildcard
objects (forbidden by the rule) would hit the wrong key space and lose
every answer, which is why the rule exists.
"""

from conftest import report, run_once

from repro import GridVineNetwork, Literal, Schema, Triple, URI
from repro.mediation.keys import term_key
from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import Variable


def build(num_triples=60):
    net = GridVineNetwork.build(num_peers=48, seed=13)
    schema = Schema("S", ["organism", "length"], domain="e7")
    net.insert_schema(schema)
    triples = []
    for i in range(num_triples):
        triples.append(Triple(
            URI(f"S:entry{i}"), URI("S#organism"),
            Literal(f"Aspergillus strain {i}")))
    net.insert_triples(triples)
    net.settle()
    return net, triples


def test_e7_insertion_fanout_is_three(benchmark):
    net, _ = build(num_triples=1)
    origin = net.peer(net.peer_ids()[0])
    triple = Triple(URI("S:extra"), URI("S#organism"),
                    Literal("Aspergillus extra"))

    def run():
        before = net.metrics_snapshot()["messages_by_kind"]
        net.loop.run_until_complete(origin.insert_triple(triple))
        net.settle()
        after = net.metrics_snapshot()["messages_by_kind"]
        return before, after

    _before, _after = run_once(benchmark, run)
    copies = sum(
        1 for peer in net.peers.values()
        for bucket in peer.store.values()
        for value in bucket
        if getattr(value, "triple", None) == triple
    )
    report("E7", f"one mediation-layer insert -> {copies} stored copies "
                 f"(paper: 3 Update() operations, one per position key)")
    assert copies == 3


def test_e7_every_position_is_searchable(benchmark):
    net, triples = build()
    target = triples[7]
    x = Variable("x")
    by_position = {
        "subject": TriplePattern(target.subject, Variable("p"), x),
        "predicate": TriplePattern(x, target.predicate,
                                   Literal("%strain 7%")),
        "object": TriplePattern(x, Variable("p"), target.object),
    }

    def run():
        results = {}
        for position, pattern in by_position.items():
            from repro.rdf.patterns import ConjunctiveQuery
            query = ConjunctiveQuery([pattern], [x])
            results[position] = net.search_for(query, strategy="local")
        return results

    results = run_once(benchmark, run)
    report("E7", "constraint search per position:")
    for position, outcome in results.items():
        routed_by = by_position[position].routing_position().value
        report("E7", f"  constrained on {position:<9} -> routed by "
                     f"{routed_by:<9} results={outcome.result_count}")
    assert all(outcome.result_count >= 1
               for outcome in results.values())


def test_e7_routing_key_ablation(benchmark):
    """Route by the LIKE object instead of the rule's choice: the
    lookup lands on Hash('%strain 7%'), where nothing is stored."""
    net, triples = build()
    target = triples[7]

    def run():
        origin = net.peer(net.peer_ids()[0])
        # correct rule: predicate key (object is a LIKE pattern)
        good = net.loop.run_until_complete(
            origin.retrieve(term_key(target.predicate)))
        # ablated rule: hash the wildcard literal itself
        bad = net.loop.run_until_complete(
            origin.retrieve(term_key(Literal("%strain 7%"))))
        return good, bad

    good, bad = run_once(benchmark, run)
    good_hits = sum(
        1 for value in (good.values or [])
        if getattr(value, "triple", None) is not None
    )
    bad_hits = len(bad.values or [])
    report("E7", f"routing by predicate key: {good_hits} candidate "
                 f"triples at destination")
    report("E7", f"routing by LIKE-object key: {bad_hits} values "
                 f"(wildcard hashes route nowhere useful)")
    assert good_hits >= len(triples)
    assert bad_hits == 0
