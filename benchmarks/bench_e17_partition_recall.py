"""E17 (extension) — partition recall with anti-entropy repair on/off.

P-Grid's maintenance layer claims that replica anti-entropy keeps the
"probabilistic guarantees for data consistency" (§2.1) standing when
the network misbehaves.  This bench measures exactly that claim with
the fault lab's deterministic partition machinery
(:mod:`repro.faultlab`):

1. deploy the corpus and insert **wave 1** of the triples while the
   network is healthy;
2. impose a *symmetric partition* that splits every replica group
   across the cut (each leaf keeps exactly one live replica per
   side), with a scheduled heal;
3. insert **wave 2** during the partition from a side-A origin
   (key-level retries until every record lands — so the A-side
   replica of each leaf has it, while the ``replicate`` fan-out to
   the B-side replica dies on the cut: the stores now *disagree*);
4. after the heal plus a fixed convergence window, issue the recall
   panel and measure recall against ground truth.

The A/B knob is the maintenance process (replica anti-entropy
``sync_push`` + routing repair): with it ON, the healed B-side
replicas are resynchronized and recall returns to ~1.0; with it OFF
the divergence is permanent and every query that routes a wave-2
subtree to a stale replica silently loses answers.  Asserted per
seed: anti-entropy-on recall >= 0.9 and anti-entropy-off *strictly
lower*.

A secondary check exercises synopsis anti-entropy under the same
partition: one post-heal :meth:`~repro.stats.gossip.StatsAntiEntropy.
sweep` must make the origin's CRDT registry hold every peer's newest
digest (the fault lab's synopsis-convergence invariant).
"""

import random

from conftest import report, run_once
from record import measure, record

from repro.datagen.generator import BioDatasetGenerator
from repro.faultlab import FaultInjector, FaultPlan, LabContext, Partition
from repro.faultlab.invariants import check_synopsis_convergence
from repro.mediation.keys import triple_keys
from repro.mediation.network import GridVineNetwork
from repro.mediation.records import TripleRecord
from repro.pgrid.maintenance import MaintenanceProcess
from repro.resilience.scenario import ground_truth_panel, recall_hits
from repro.simnet.events import gather
from repro.stats.gossip import StatsAntiEntropy

NEEDLES = ("Aspergillus", "Saccharomyces", "Escherichia")

#: partition window relative to injector install (virtual seconds)
PARTITION_START = 30.0
PARTITION_HEAL = 210.0
#: post-heal convergence window before the first query
QUERY_START = 270.0


def straddling_partition(net: GridVineNetwork, origin: str,
                         seed: int) -> FaultPlan:
    """A symmetric cut splitting every replica group across the sides.

    Each leaf keeps one replica per side, so both halves cover the
    whole key space — the interesting partition: no data is *lost*,
    but updates issued on one side cannot replicate to the other.
    """
    groups: dict[str, list[str]] = {}
    for node_id, peer in net.peers.items():
        groups.setdefault(peer.path.bits, []).append(node_id)
    side_a: list[str] = []
    side_b: list[str] = []
    for bits in sorted(groups):
        members = sorted(groups[bits])
        half = (len(members) + 1) // 2
        side_a += members[:half]
        side_b += members[half:]
    if origin in side_b:
        side_b.remove(origin)
        side_a.append(origin)
    return FaultPlan(seed=seed, faults=(
        Partition(side_a=tuple(sorted(side_a)),
                  side_b=tuple(sorted(side_b)),
                  start=PARTITION_START, heal_at=PARTITION_HEAL,
                  symmetric=True),
    ))


def insert_until_placed(net, origin_peer, triples,
                        max_rounds: int = 8) -> tuple[int, int]:
    """Insert triples key-by-key, retrying failures until placed.

    During the partition roughly half the routing attempts die on the
    cut; retrying only the *failed* keys converges in a few rounds
    without duplicating the already-placed records.  Returns
    ``(unplaced_keys, rounds_used)``.
    """
    pending = [(t, k) for t in triples for k in triple_keys(t)]
    rounds = 0
    while pending and rounds < max_rounds:
        rounds += 1
        futures = [origin_peer.update(key, TripleRecord(triple))
                   for triple, key in pending]
        results = net.loop.run_until_complete(gather(futures))
        pending = [pair for pair, result in zip(pending, results)
                   if not result.success]
    return len(pending), rounds


def run_partition_scenario(seed: int, anti_entropy: bool, scale: str):
    quick = scale == "quick"
    dataset = BioDatasetGenerator(
        num_schemas=4 if quick else 6,
        num_entities=40 if quick else 80,
        entities_per_schema=10 if quick else 16,
        seed=seed,
    ).generate()
    net = GridVineNetwork.build(
        num_peers=32 if quick else 64,
        replication=2, refs_per_level=2, seed=seed,
    )
    for schema in dataset.schemas:
        net.insert_schema(schema)
    names = [s.name for s in dataset.schemas]
    for a, b in zip(names, names[1:]):
        net.insert_mapping(dataset.ground_truth_mapping(a, b),
                           bidirectional=True)
    wave1, wave2 = dataset.triples[0::2], dataset.triples[1::2]
    net.insert_triples(wave1)
    net.settle()
    origin = net.peer_ids()[0]
    origin_peer = net.peer(origin)

    maintenance = None
    if anti_entropy:
        maintenance = MaintenanceProcess(
            net.peers, interval=10.0, refs_per_level=2,
            rng=random.Random(seed + 101),
            repair_thin_levels=True,
        )
        maintenance.start()
    injector = FaultInjector(
        net.network, straddling_partition(net, origin, seed)).install()
    t0 = net.loop.now
    net.loop.run_until(t0 + PARTITION_START + 10.0)
    unplaced, rounds = insert_until_placed(net, origin_peer, wave2)
    net.loop.run_until(t0 + QUERY_START)

    panel = ground_truth_panel(dataset, NEEDLES)
    num_queries = 12 if quick else 18
    recalls = []
    for index in range(num_queries):
        query, truth = panel[index % len(panel)]
        outcome = net.search_for(query, strategy="iterative", max_hops=8,
                                 origin=origin)
        hits = recall_hits(outcome)
        recalls.append(len(hits & truth) / len(truth) if truth else 1.0)
        net.loop.run_until(net.loop.now + 20.0)
    injector.uninstall()
    if maintenance is not None:
        maintenance.stop()
    net.settle()

    # Synopsis anti-entropy under the same partition: one explicit
    # post-heal sweep must converge the origin's CRDT registry.
    StatsAntiEntropy(net.peers, origin).sweep()
    net.settle()
    convergence_gaps = check_synopsis_convergence(
        LabContext(net=net, origin=origin))
    return {
        "recall": sum(recalls) / len(recalls),
        "recalls": recalls,
        "unplaced": unplaced,
        "insert_rounds": rounds,
        "convergence_gaps": convergence_gaps,
    }


def test_e17_partition_recall(benchmark, scale):
    seeds = (3, 11, 29) if scale == "quick" else (3, 11, 29, 47, 61)

    def run():
        series = []
        for seed in seeds:
            runs = {mode: run_partition_scenario(seed, mode, scale)
                    for mode in (True, False)}
            series.append((seed, runs[True], runs[False]))
        return series

    series, wall = measure(lambda: run_once(benchmark, run))
    record("E17", scale=scale, totals={"wall_clock_s": round(wall, 3)},
           runs=[
               {
                   "seed": seed,
                   "anti_entropy": label == "anti-entropy",
                   "recall": round(r["recall"], 6),
                   "worst_query_recall": round(min(r["recalls"]), 6),
                   "insert_rounds": r["insert_rounds"],
                   "unplaced": r["unplaced"],
               }
               for seed, on, off in series
               for label, r in (("anti-entropy", on), ("baseline", off))
           ])
    report("E17", f"{len(seeds)} seeds, symmetric partition "
                  f"[{PARTITION_START:.0f}s..{PARTITION_HEAL:.0f}s) "
                  f"splitting every replica group; wave-2 inserts "
                  f"during the cut, queries after heal")
    report("E17", f"{'seed':>4} | {'mode':>12} {'recall':>7} "
                  f"{'worst q':>8} {'ins rounds':>10}")
    for seed, on, off in series:
        for label, r in (("anti-entropy", on), ("baseline", off)):
            report("E17", f"{seed:>4} | {label:>12} {r['recall']:>7.3f} "
                          f"{min(r['recalls']):>8.2f} "
                          f"{r['insert_rounds']:>10}")

    for seed, on, off in series:
        # Every wave-2 record must have landed somewhere — otherwise
        # low recall would measure insert loss, not divergence.
        assert on["unplaced"] == 0 and off["unplaced"] == 0
        # The headline claim: with replica anti-entropy the healed
        # network recovers full recall; without it the divergence
        # created during the partition is permanent and strictly
        # hurts.
        assert on["recall"] >= 0.9, (
            f"anti-entropy recall below bound on seed {seed}: "
            f"{on['recall']:.3f}"
        )
        assert off["recall"] < on["recall"], (
            f"baseline not strictly worse on seed {seed}: "
            f"{off['recall']:.3f} vs {on['recall']:.3f}"
        )
        # Synopsis anti-entropy converged the origin's registry after
        # the heal (both modes: the sweep is explicit pulls).
        assert on["convergence_gaps"] == []
        assert off["convergence_gaps"] == []
