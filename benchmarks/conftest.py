"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one table/figure/claim of the paper's
evaluation (see DESIGN.md §4 for the experiment index and
EXPERIMENTS.md for recorded paper-vs-measured results).  Benchmarks
print their series with the ``[Ex]`` experiment tag so the harness
output is self-describing.

Scale control
-------------
``REPRO_BENCH_SCALE=full`` runs the paper-scale configurations (E2 at
340 peers / 17 000 triples / 23 000 queries).  The default ``quick``
scale shrinks the workloads ~10x so the whole suite finishes in a
couple of minutes; the *shape* of every result is preserved.
"""

import os

import pytest


def bench_scale() -> str:
    """Current scale: ``"full"`` or ``"quick"``."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def report(tag: str, line: str) -> None:
    """Print one experiment-output line (shown with pytest -s or on
    the captured-output section of the benchmark run)."""
    print(f"[{tag}] {line}")


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy simulation exactly once under pytest-benchmark.

    The simulations are deterministic and expensive; statistical
    repetition would only re-measure the same virtual outcome, so each
    benchmark runs a single round and reports wall-clock for that run.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
