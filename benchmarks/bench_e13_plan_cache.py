"""E13 (extension) — the query engine: plan cache + batched dedup.

The engine attacks the two per-query costs of the mediation layer:
reformulation planning (BFS over the mapping graph) and per-pattern
overlay lookups.  This bench measures both savings on a repeated-query
workload over a mapping chain S0 -> S1 -> S2 -> S3:

* **warm vs cold planning** — the same workload executed once with the
  plan cache disabled (``cache_capacity=0``: every query re-plans) and
  once enabled (each distinct query shape plans once).  The paper-
  grade claim is >= 5x fewer planner invocations warm than cold.
* **batched vs sequential messages** — the same workload executed
  query-by-query vs as one batch with pattern lookups deduplicated
  across the whole batch.
"""

from conftest import report, run_once
from record import measure, record

from repro import GridVineNetwork, Literal, Schema, Triple, URI


def build_corpus(num_schemas=4, entries_per_schema=12, seed=29):
    """A chain of mapped schemas, each with its own data extent."""
    net = GridVineNetwork.build(num_peers=48, seed=seed)
    schemas = [Schema(f"S{i}", ["org", "len"], domain="e13")
               for i in range(num_schemas)]
    for schema in schemas:
        net.insert_schema(schema)
    triples = []
    for i, schema in enumerate(schemas):
        for j in range(entries_per_schema):
            organism = "Aspergillus" if j % 3 == 0 else "Yeast"
            subject = URI(f"{schema.name}:e{j}")
            triples.append(Triple(subject,
                                  URI(f"{schema.name}#org"),
                                  Literal(f"{organism}-{i}-{j}")))
            triples.append(Triple(subject,
                                  URI(f"{schema.name}#len"),
                                  Literal(str(100 + j))))
    net.insert_triples(triples)
    for a, b in zip(schemas, schemas[1:]):
        net.create_mapping(a, b, [("org", "org"), ("len", "len")])
    net.settle()
    return net


def workload(repeats):
    """``repeats`` interleaved copies of four distinct query shapes."""
    distinct = [
        "SearchFor(x? : (x?, S0#org, %Aspergillus%))",
        "SearchFor(y? : (y?, S0#org, %Aspergillus%))",  # alpha-variant
        "SearchFor(x? : (x?, S1#org, %Yeast%))",
        'SearchFor(x?, y? : (x?, S0#org, %Aspergillus%) '
        'AND (x?, S0#len, y?))',
    ]
    return [q for _ in range(repeats) for q in distinct]


def test_e13_plan_cache_and_batching(benchmark, scale):
    repeats = 8 if scale == "quick" else 32
    queries = workload(repeats)

    def run():
        walls = {}

        # -- cold: plan cache disabled, every query re-plans ----------
        def run_cold():
            net = build_corpus()
            cold = net.create_engine(domain="e13", cache_capacity=0)
            for query in queries:
                cold.search_for(query)
            return cold

        # -- warm: plan cache on, same sequential workload ------------
        def run_warm():
            net = build_corpus()
            warm = net.create_engine(domain="e13")
            sequential_messages = 0
            for query in queries:
                sequential_messages += warm.search_for(query).messages
            return warm, sequential_messages

        # -- batched: same workload, one batch, shared lookups --------
        def run_batched():
            net = build_corpus()
            batched = net.create_engine(domain="e13")
            return net, batched, batched.execute_batch(queries)

        cold, walls["cold"] = measure(run_cold)
        (warm, sequential_messages), walls["warm"] = measure(run_warm)
        (net, batched, result), walls["batched"] = measure(run_batched)
        # Unified-registry snapshot of the batched deployment: network
        # counters + engine view, all deterministic simulation counts
        # (the perf gate compares them exactly).
        metrics = net.registry.snapshot()
        return (cold.stats.snapshot(), warm.stats.snapshot(),
                batched.stats.snapshot(), sequential_messages, result,
                metrics, walls)

    (cold, warm, batched, sequential_messages, result, metrics,
     walls) = run_once(benchmark, run)
    report("E13", f"workload: {len(queries)} queries "
                  f"({len(workload(1))} distinct shapes x {repeats})")
    report("E13", f"{'engine':>8} | {'planner runs':>12} "
                  f"{'cache hits':>10} {'hit rate':>8}")
    for label, stats in (("cold", cold), ("warm", warm)):
        report("E13", f"{label:>8} | {stats['planner_invocations']:>12} "
                      f"{stats['cache']['hits']:>10} "
                      f"{stats['cache']['hit_rate']:>8.1%}")
    report("E13", f"messages: sequential {sequential_messages}, "
                  f"batched {batched['messages']}; pattern lookups "
                  f"{result.patterns_total} -> {result.patterns_fetched} "
                  f"({result.lookups_saved} saved by dedup)")
    record("E13", scale=scale, metrics=metrics, runs=[
        {"mode": "cold", "wall_clock_s": round(walls["cold"], 3),
         "rows": len(queries),
         "planner_invocations": cold["planner_invocations"],
         "cache_hits": cold["cache"]["hits"]},
        {"mode": "warm", "wall_clock_s": round(walls["warm"], 3),
         "rows": len(queries), "messages": sequential_messages,
         "planner_invocations": warm["planner_invocations"],
         "cache_hits": warm["cache"]["hits"]},
        {"mode": "batched", "wall_clock_s": round(walls["batched"], 3),
         "rows": len(queries), "messages": batched["messages"],
         "patterns_total": result.patterns_total,
         "patterns_fetched": result.patterns_fetched},
    ], totals={"queries": len(queries), "seed": 29})

    # A repeated query plans once warm, every time cold: >= 5x fewer.
    assert cold["planner_invocations"] >= \
        5 * warm["planner_invocations"]
    # Warm planning still answers every query (hits fill the gap).
    assert (warm["cache"]["hits"] + warm["planner_invocations"]
            == len(queries))
    # Batching dedupes pattern lookups and saves network messages.
    assert result.patterns_fetched < result.patterns_total
    assert batched["messages"] < sequential_messages
