"""E3 — §3.1: the connectivity indicator vs the real giant component.

Paper claim: ``ci = sum_jk (jk - k) p_jk >= 0`` "indicates the
emergence of a giant connected component in the graph of schemas and
mappings"; while ``ci < 0`` the mediation layer is not strongly
connected.

Reproduction: sweep the number of random mappings over a fixed schema
population; at each density compare the indicator's sign (computed
from degree records exactly as the domain peer would) against the
ground-truth largest-SCC fraction (Tarjan).  The series shows ci
crossing zero right where the giant component takes off.
"""

import random

from conftest import report, run_once

from repro.connectivity.analysis import giant_scc_fraction
from repro.connectivity.indicator import indicator_from_degrees


def sample_graph(num_schemas, num_edges, rng):
    """A random directed mapping graph (no self-loops, no duplicates)."""
    edges = set()
    while len(edges) < num_edges:
        a = rng.randrange(num_schemas)
        b = rng.randrange(num_schemas)
        if a != b:
            edges.add((a, b))
    degrees = {i: [0, 0] for i in range(num_schemas)}
    adjacency = {str(i): [] for i in range(num_schemas)}
    for a, b in edges:
        degrees[a][1] += 1
        degrees[b][0] += 1
        adjacency[str(a)].append(str(b))
    return ([(j, k) for j, k in degrees.values()], adjacency)


def test_e3_indicator_tracks_giant_component(benchmark, scale):
    num_schemas = 200 if scale == "quick" else 1000
    trials = 5
    densities = [0.2, 0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0]

    def run():
        rows = []
        for density in densities:
            cis, giants = [], []
            for trial in range(trials):
                rng = random.Random(1000 * trial + int(density * 10))
                degrees, adjacency = sample_graph(
                    num_schemas, int(density * num_schemas), rng)
                cis.append(indicator_from_degrees(degrees))
                giants.append(giant_scc_fraction(adjacency))
            rows.append((density,
                         sum(cis) / trials,
                         sum(giants) / trials))
        return rows

    rows = run_once(benchmark, run)
    report("E3", f"{num_schemas} schemas, mean over {trials} trials")
    report("E3", f"{'edges/schema':>12} {'ci':>8} {'giant SCC':>10} "
                 f"{'verdict':>22}")
    for density, ci, giant in rows:
        verdict = "connected" if ci >= 0 else "needs mappings"
        report("E3", f"{density:>12.1f} {ci:>8.3f} {giant:>9.1%} "
                     f"{verdict:>22}")

    # Shape: ci < 0 with vanishing giant at low density; ci > 0 with a
    # large giant at high density; crossover near 1 edge/schema.
    sparse = [r for r in rows if r[0] <= 0.5]
    dense = [r for r in rows if r[0] >= 2.0]
    assert all(ci < 0 and giant < 0.05 for _d, ci, giant in sparse)
    assert all(ci > 0 and giant > 0.25 for _d, ci, giant in dense)


def test_e3_indicator_from_published_records(benchmark):
    """Same check, but through the full system: degree records
    published by schema peers and aggregated via ``Hash(Domain)``."""
    from repro.datagen import BioDatasetGenerator
    from repro.mediation.network import GridVineNetwork

    dataset = BioDatasetGenerator(
        num_schemas=10, num_entities=60, entities_per_schema=15, seed=5,
    ).generate()
    net = GridVineNetwork.build(num_peers=32, seed=5)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.settle()
    names = [s.name for s in dataset.schemas]

    def run():
        series = []
        # ring the schemas one mapping at a time; record ci + giant
        for i in range(len(names)):
            mapping = dataset.ground_truth_mapping(
                names[i], names[(i + 1) % len(names)],
                mapping_id=f"ring:{i}")
            net.insert_mapping(mapping)
            net.settle()
            ci = net.connectivity_indicator(dataset.domain)
            graph = net.mapping_graph(dataset.domain)
            adjacency = {s: [] for s in graph.schemas()}
            for m in graph.mappings():
                adjacency[m.source_schema].append(m.target_schema)
            series.append((i + 1, ci, giant_scc_fraction(adjacency)))
        return series

    series = run_once(benchmark, run)
    report("E3", "live system: ring construction, one mapping at a time")
    for count, ci, giant in series:
        report("E3", f"  {count:>2} mappings: ci={ci:+.3f} "
                     f"giant={giant:.1%}")
    # Before the ring closes the graph is a path: fragmented, ci < 0.
    assert all(ci < 0 for _c, ci, _g in series[:-1])
    # Closing the ring makes every schema reachable: ci hits 0, and
    # the real giant component jumps to 100%.
    final_count, final_ci, final_giant = series[-1]
    assert final_ci >= 0
    assert final_giant == 1.0
