"""Benchmark baseline recorder: committed ``BENCH_<exp>.json`` files.

Each experiment bench calls :func:`record` once with its headline
numbers — wall time, message counts, result rows, peak RSS, one entry
per seed/configuration — and the recorder writes them next to the
bench sources as ``BENCH_<exp>.json``.  The files are committed, so a
future PR can diff its own run against the baseline the previous PR
shipped (CI additionally uploads them as artifacts from the
``scale-smoke`` job).

The JSON is deliberately timestamp-free: re-running an unchanged bench
on comparable hardware produces a file whose *structure* diffs clean,
and whose numeric drift is the signal.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from typing import Any, Callable

#: where BENCH_<exp>.json files live (next to the bench sources)
BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in KiB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def measure(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` and return ``(result, wall_clock_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def record(experiment: str, *, scale: str, runs: list[dict],
           totals: dict | None = None,
           directory: str | None = None) -> str:
    """Write ``BENCH_<experiment>.json`` and return its path.

    ``runs`` is one dict per seed/configuration (each should carry at
    least a label plus its wall time / message count / row count);
    ``totals`` merges experiment-level headline numbers into the top
    level.  Peak RSS and the python version are stamped automatically.
    """
    payload: dict[str, Any] = {
        "experiment": experiment,
        "scale": scale,
        "python": platform.python_version(),
        "peak_rss_kb": peak_rss_kb(),
    }
    if totals:
        payload.update(totals)
    payload["runs"] = runs
    path = os.path.join(directory or BENCH_DIR,
                        f"BENCH_{experiment}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
