"""Benchmark baseline recorder: ``BENCH_<exp>.json`` files.

Each experiment bench calls :func:`record` once with its headline
numbers — wall time, message counts, result rows, peak RSS, one entry
per seed/configuration.  Fresh runs land in ``benchmarks/out/``
(gitignored): running ``pytest benchmarks/`` never touches the
*committed* baselines sitting next to the bench sources.  The
committed ``benchmarks/BENCH_<exp>.json`` files are only rewritten
when ``REPRO_BENCH_WRITE_BASELINE=1`` is set — the deliberate "ship a
new baseline" step of a perf PR.

``benchmarks/perf_gate.py`` diffs a fresh ``out/`` run against the
committed files: count fields must match exactly, wall-clock within a
tolerance band (see the module docstring there).  CI runs the gate on
every push; the committed files are also uploaded as artifacts from
the ``scale-smoke`` job.

The JSON is deliberately timestamp-free: re-running an unchanged bench
on comparable hardware produces a file whose *structure* diffs clean,
and whose numeric drift is the signal.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from typing import Any, Callable

#: where the *committed* BENCH_<exp>.json baselines live (next to the
#: bench sources)
BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

#: where fresh (uncommitted) runs are written by default
OUT_DIR = os.path.join(BENCH_DIR, "out")


def record_dir() -> str:
    """Where :func:`record` writes: ``benchmarks/out/`` normally, the
    committed baseline directory when ``REPRO_BENCH_WRITE_BASELINE=1``."""
    if os.environ.get("REPRO_BENCH_WRITE_BASELINE") == "1":
        return BENCH_DIR
    return OUT_DIR


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in KiB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def measure(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` and return ``(result, wall_clock_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def record(experiment: str, *, scale: str, runs: list[dict],
           totals: dict | None = None,
           metrics: dict | None = None,
           directory: str | None = None) -> str:
    """Write ``BENCH_<experiment>.json`` and return its path.

    ``runs`` is one dict per seed/configuration (each should carry at
    least a label plus its wall time / message count / row count);
    ``totals`` merges experiment-level headline numbers into the top
    level.  ``metrics`` attaches a unified-registry snapshot (see
    :class:`repro.obs.registry.MetricsRegistry`) under a ``metrics``
    key — simulation counters only, so the perf gate compares it
    exactly like any other count field.  Peak RSS and the python
    version are stamped automatically.

    Without an explicit ``directory`` the file goes to
    :func:`record_dir` — the gitignored ``benchmarks/out/`` unless the
    ``REPRO_BENCH_WRITE_BASELINE=1`` escape hatch redirects it onto
    the committed baselines.
    """
    payload: dict[str, Any] = {
        "experiment": experiment,
        "scale": scale,
        "python": platform.python_version(),
        "peak_rss_kb": peak_rss_kb(),
    }
    if totals:
        payload.update(totals)
    if metrics is not None:
        payload["metrics"] = metrics
    payload["runs"] = runs
    target = directory or record_dir()
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, f"BENCH_{experiment}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
