"""Perf gate: diff a fresh benchmark run against committed baselines.

Compares every committed ``benchmarks/BENCH_<exp>.json`` against the
fresh ``benchmarks/out/BENCH_<exp>.json`` written by a plain
``pytest benchmarks/ --benchmark-only`` run (see :mod:`record`):

* **count-like fields** (messages, rows, successes, planner
  invocations, cache hits, recall, ...) must match **exactly** — the
  whole simulation is deterministic, so any drift is a real behaviour
  change and fails the gate;
* **wall-clock fields** (``wall_clock_s``) must land inside a
  tolerance band around the committed value, default ±40% with a
  0.02 s absolute floor — wide enough for machine noise (shared CI
  runners drift ±20% on this workload), tight enough that a real
  regression (the kind worth a perf PR) trips it;
* **environment fields** (``peak_rss_kb``, ``python``,
  ``wall_clock_runs_s``, ``per_shard_peak_rss_kb``) are ignored.

A baseline whose ``scale`` differs from the fresh run (e.g. the
committed full-scale E18 vs CI's quick run) is skipped — counts are
only comparable at identical scale.

Knobs (environment):

* ``REPRO_PERF_GATE_WALL_TOL`` — relative wall tolerance as a
  fraction (default ``0.40``);
* ``REPRO_PERF_GATE_WALL_FLOOR`` — absolute wall slack in seconds
  (default ``0.02``), so sub-50 ms phases aren't judged on scheduler
  jitter.

Exit status 0 when every comparable baseline passes, 1 otherwise,
with a per-field diff of everything that failed.

Shipping an intentional perf change: re-record with
``REPRO_BENCH_WRITE_BASELINE=1 pytest benchmarks/ --benchmark-only``
and commit the rewritten baselines alongside the code.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

from record import BENCH_DIR, OUT_DIR

#: fields judged with the tolerance band instead of exact equality
WALL_FIELDS = frozenset({"wall_clock_s"})

#: fields that vary with the machine/interpreter, not the code
IGNORED_FIELDS = frozenset({
    "peak_rss_kb",
    "per_shard_peak_rss_kb",
    "python",
    "wall_clock_runs_s",
})


def wall_tolerance() -> float:
    return float(os.environ.get("REPRO_PERF_GATE_WALL_TOL", "0.40"))


def wall_floor() -> float:
    return float(os.environ.get("REPRO_PERF_GATE_WALL_FLOOR", "0.02"))


def diff_payload(baseline, fresh, *, tol: float, floor: float,
                 path: str = "") -> list[str]:
    """All mismatches between two recorded payloads, as readable lines.

    Dicts are compared by key (ignored fields dropped), lists
    positionally; ``wall_clock_s`` leaves get the tolerance band,
    every other leaf must be equal.
    """
    problems: list[str] = []
    if isinstance(baseline, dict) and isinstance(fresh, dict):
        base_keys = set(baseline) - IGNORED_FIELDS
        fresh_keys = set(fresh) - IGNORED_FIELDS
        for key in sorted(base_keys - fresh_keys):
            problems.append(f"{path}.{key}: missing from fresh run")
        for key in sorted(fresh_keys - base_keys):
            problems.append(f"{path}.{key}: not in committed baseline")
        for key in sorted(base_keys & fresh_keys):
            problems += diff_payload(baseline[key], fresh[key],
                                     tol=tol, floor=floor,
                                     path=f"{path}.{key}")
        return problems
    if isinstance(baseline, list) and isinstance(fresh, list):
        if len(baseline) != len(fresh):
            return [f"{path}: {len(baseline)} entries committed, "
                    f"{len(fresh)} fresh"]
        for index, (b, f) in enumerate(zip(baseline, fresh)):
            problems += diff_payload(b, f, tol=tol, floor=floor,
                                     path=f"{path}[{index}]")
        return problems
    leaf = path.rsplit(".", 1)[-1].split("[", 1)[0]
    if leaf in WALL_FIELDS:
        band = max(floor, tol * float(baseline))
        drift = float(fresh) - float(baseline)
        if abs(drift) > band:
            problems.append(
                f"{path}: wall {fresh}s vs committed {baseline}s "
                f"({drift:+.3f}s, band ±{band:.3f}s)")
    elif baseline != fresh:
        problems.append(f"{path}: {fresh!r} != committed {baseline!r}")
    return problems


def gate(baseline_dir: str = BENCH_DIR, fresh_dir: str = OUT_DIR,
         tol: float | None = None,
         floor: float | None = None) -> tuple[int, list[str]]:
    """Run the gate; returns ``(exit_status, report_lines)``."""
    tol = wall_tolerance() if tol is None else tol
    floor = wall_floor() if floor is None else floor
    lines: list[str] = []
    failed = False
    baselines = sorted(glob.glob(os.path.join(baseline_dir,
                                              "BENCH_*.json")))
    if not baselines:
        return 1, [f"perf-gate: no committed baselines in "
                   f"{baseline_dir}"]
    for base_path in baselines:
        name = os.path.basename(base_path)
        fresh_path = os.path.join(fresh_dir, name)
        with open(base_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        if not os.path.exists(fresh_path):
            failed = True
            lines.append(f"FAIL {name}: no fresh run in {fresh_dir} "
                         f"(did pytest benchmarks/ run?)")
            continue
        with open(fresh_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
        if baseline.get("scale") != fresh.get("scale"):
            lines.append(f"SKIP {name}: committed at scale "
                         f"{baseline.get('scale')!r}, fresh run is "
                         f"{fresh.get('scale')!r}")
            continue
        problems = diff_payload(baseline, fresh, tol=tol, floor=floor,
                                path=name.removesuffix(".json"))
        if problems:
            failed = True
            lines.append(f"FAIL {name}: {len(problems)} mismatch(es)")
            lines += [f"  {p}" for p in problems]
        else:
            lines.append(f"PASS {name}: counts exact, wall within "
                         f"±{tol:.0%}")
    return (1 if failed else 0), lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff fresh benchmark results against committed "
                    "baselines.")
    parser.add_argument("--baseline-dir", default=BENCH_DIR,
                        help="committed baselines (default: "
                             "benchmarks/)")
    parser.add_argument("--fresh-dir", default=OUT_DIR,
                        help="fresh results (default: benchmarks/out/)")
    parser.add_argument("--wall-tol", type=float, default=None,
                        help="relative wall-clock tolerance, fraction "
                             "(default: REPRO_PERF_GATE_WALL_TOL or "
                             "0.40)")
    parser.add_argument("--wall-floor", type=float, default=None,
                        help="absolute wall-clock slack in seconds "
                             "(default: REPRO_PERF_GATE_WALL_FLOOR or "
                             "0.02)")
    options = parser.parse_args(argv)
    status, lines = gate(options.baseline_dir, options.fresh_dir,
                         tol=options.wall_tol, floor=options.wall_floor)
    print("\n".join(lines))
    print("perf-gate:", "FAILED" if status else "passed")
    return status


if __name__ == "__main__":
    sys.exit(main())
