"""E12 (extension) — §2.3: conjunctive-query join strategies.

The paper resolves conjunctive queries "by iteratively resolving each
triple pattern contained in the query and aggregating the sets of
results retrieved" — our ``parallel`` mode.  The classic distributed-
query refinement is the *bound join*: resolve the most selective
pattern first and substitute its bindings into the next pattern, so
only matching tuples ever cross the network.

The bench sweeps the selectivity of the first pattern and reports,
for both modes, the result counts (always identical), messages, and
values shipped.  The crossover is the point of the ablation: parallel
wins on messages when everything is small; bound wins on shipped
volume as the unbound extent grows relative to the selective subset.
"""

from conftest import report, run_once

from repro import GridVineNetwork, Literal, Schema, Triple, URI


def build_corpus(num_entries, num_selected, seed=33):
    net = GridVineNetwork.build(num_peers=48, seed=seed)
    schema = Schema("S", ["org", "len"], domain="e12")
    net.insert_schema(schema)
    triples = []
    for i in range(num_entries):
        organism = "Aspergillus" if i < num_selected else "Yeast"
        triples.append(Triple(URI(f"S:e{i}"), URI("S#org"),
                              Literal(organism)))
        triples.append(Triple(URI(f"S:e{i}"), URI("S#len"),
                              Literal(str(100 + i))))
    net.insert_triples(triples)
    net.settle()
    return net


QUERY = ('SearchFor(x?, y? : (x?, S#org, "Aspergillus") '
         'AND (x?, S#len, y?))')


def test_e12_parallel_vs_bound_join(benchmark, scale):
    num_entries = 120 if scale == "quick" else 400
    selectivities = [2, 8, 24]

    def run():
        rows = []
        for num_selected in selectivities:
            net = build_corpus(num_entries, num_selected)
            measurements = {}
            for mode in ("parallel", "bound"):
                for peer in net.peers.values():
                    peer.join_mode = mode
                net.network.metrics.reset()
                outcome = net.search_for(QUERY, strategy="local")
                snapshot = net.metrics_snapshot()
                measurements[mode] = (
                    outcome.result_count,
                    snapshot["messages_sent"],
                    snapshot["values_shipped"],
                )
            rows.append((num_selected, measurements))
        return rows

    rows = run_once(benchmark, run)
    report("E12", f"corpus of {num_entries} entries; query joins a "
                  f"selective pattern with the full S#len extent")
    report("E12", f"{'selected':>9} | {'par rows':>8} {'par msgs':>9} "
                  f"{'par shipped':>12} | {'bnd rows':>8} "
                  f"{'bnd msgs':>9} {'bnd shipped':>12}")
    for num_selected, m in rows:
        p = m["parallel"]
        b = m["bound"]
        report("E12", f"{num_selected:>9} | {p[0]:>8} {p[1]:>9} "
                      f"{p[2]:>12} | {b[0]:>8} {b[1]:>9} {b[2]:>12}")

    for num_selected, m in rows:
        assert m["parallel"][0] == m["bound"][0] == num_selected
        # parallel always ships the full unbound extent (plus the
        # selective side); bound ships only the matching tuples
        assert m["bound"][2] < m["parallel"][2]
    # the gap widens as selectivity sharpens relative to the extent
    first_gap = rows[0][1]["parallel"][2] - rows[0][1]["bound"][2]
    last_gap = rows[-1][1]["parallel"][2] - rows[-1][1]["bound"][2]
    assert first_gap > last_gap
