"""E2 — the §2.3 deployment measurement: query-latency distribution.

Paper claim: "A recent deployment of GridVine on 340 machines
scattered around the world sharing 17000 triples showed that 40% of
the 23000 triple pattern queries we submitted were answered within one
second only, and 75% within five seconds."

Reproduction: 340 simulated peers under the calibrated WAN latency
model (log-normal base RTT, per-message jitter, 15 % straggler hosts —
the PlanetLab-era profile, see DESIGN.md), a 50-schema corpus sized to
~17 000 triples, and a stream of triple-pattern queries (no
reformulation, matching the paper's workload).  The series reported is
the latency CDF at the paper's two anchor points plus quartiles.

``REPRO_BENCH_SCALE=full`` runs all 23 000 queries; the default quick
scale runs 2 000 (the CDF is stable well below that).
"""

from conftest import report, run_once

from repro import GridVineNetwork
from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
from repro.simnet import LogNormalWANLatency
from repro.util.stats import empirical_cdf_at, percentile

#: WAN model calibrated so hop-count x per-hop delay lands near the
#: paper's anchor points (see EXPERIMENTS.md for the sweep).
CALIBRATED_LATENCY = dict(median_ms=100.0, sigma=0.9,
                          jitter_ms=10.0, straggler_prob=0.15,
                          straggler_ms=3000.0)

NUM_PEERS = 340          # paper: 340 machines
TARGET_TRIPLES = 17_000  # paper: 17 000 triples
FULL_QUERIES = 23_000    # paper: 23 000 queries
QUICK_QUERIES = 2_000


def build_deployment():
    dataset = BioDatasetGenerator(
        num_schemas=50,            # paper: 50 distinct schemas
        num_entities=330,
        entities_per_schema=44,    # 50 * 44 * ~8 attrs ~= 17k triples
        seed=2,
    ).generate()
    net = GridVineNetwork.build(
        num_peers=NUM_PEERS, seed=4, replication=2,
        latency=LogNormalWANLatency(**CALIBRATED_LATENCY),
    )
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    net.settle()
    return net, dataset


def test_e2_latency_distribution(benchmark, scale):
    num_queries = FULL_QUERIES if scale == "full" else QUICK_QUERIES
    net, dataset = build_deployment()
    triple_count = len(dataset.triples)
    workload = QueryWorkloadGenerator(dataset, seed=9)
    queries = workload.queries(num_queries)

    def run():
        latencies = []
        answered = 0
        for query in queries:
            outcome = net.search_for(query, strategy="local")
            latencies.append(outcome.latency)
            if outcome.result_count:
                answered += 1
        return latencies, answered

    latencies, answered = run_once(benchmark, run)
    within_1s = empirical_cdf_at(latencies, 1.0)
    within_5s = empirical_cdf_at(latencies, 5.0)
    report("E2", f"peers={NUM_PEERS} triples={triple_count} "
                 f"queries={len(latencies)}")
    report("E2", f"answered within 1s: {within_1s:6.1%}   (paper: 40%)")
    report("E2", f"answered within 5s: {within_5s:6.1%}   (paper: 75%)")
    report("E2", f"median {percentile(latencies, 50):.2f}s  "
                 f"p90 {percentile(latencies, 90):.2f}s  "
                 f"p99 {percentile(latencies, 99):.2f}s (simulated)")
    report("E2", f"queries with >=1 result: {answered / len(latencies):.1%}")

    # Shape assertions: the anchors must land in the paper's ballpark.
    assert triple_count == TARGET_TRIPLES or abs(
        triple_count - TARGET_TRIPLES) / TARGET_TRIPLES < 0.1
    assert 0.25 <= within_1s <= 0.55
    assert 0.60 <= within_5s <= 0.90
    assert within_5s > within_1s
