"""E14 (extension) — churn recall with replica failover on vs off.

The paper's P-Grid substrate promises "probabilistic guarantees for
data consistency ... even in highly unreliable, dynamic environments"
(§2.1).  This bench quantifies what the mediation layer gets out of
that under sustained churn: the *same* scripted scenario (same seed,
same churn timeline, same query workload) is run twice, once with
replica-aware failover enabled and once with the pre-failover
behaviour (messages to crashed references vanish; retries re-roll
blindly).  The series is (seed, recall, p50 latency, failovers,
gave-up operations) per mode.

Per-operation message attribution keeps the reported query messages
exact even though maintenance, replication and churn traffic run
concurrently — the delta-based accounting this replaced would have
billed all of it to the queries.
"""

from conftest import report, run_once
from record import measure, record

from repro.resilience import ScenarioRunner, ScenarioSpec


def scenario_spec(seed, failover, scale):
    return ScenarioSpec(
        num_peers=48 if scale == "quick" else 96,
        replication=3,
        refs_per_level=3,
        seed=seed,
        failover=failover,
        num_schemas=5 if scale == "quick" else 8,
        num_entities=50 if scale == "quick" else 120,
        num_queries=18 if scale == "quick" else 36,
        mean_uptime=90.0,
        mean_downtime=45.0,
    )


def test_e14_churn_recall(benchmark, scale):
    seeds = (3, 11, 29) if scale == "quick" else (3, 11, 29, 47, 61)

    def run():
        series = []
        for seed in seeds:
            runs, walls = {}, {}
            for failover in (True, False):
                spec = scenario_spec(seed, failover, scale)
                runs[failover], walls[failover] = measure(
                    ScenarioRunner.from_spec(spec).run)
            series.append((seed, runs[True], runs[False], walls))
        return series

    series = run_once(benchmark, run)
    report("E14", f"{len(seeds)} seeds, "
                  f"{scenario_spec(0, True, scale).num_queries} queries "
                  f"each, churn up/down 90s/45s (1/3 offline at a time)")
    report("E14", f"{'seed':>4} | {'mode':>8} {'recall':>7} "
                  f"{'p50 lat':>8} {'failovers':>9} {'gave up':>7}")
    for seed, on, off, _walls in series:
        for label, r in (("failover", on), ("baseline", off)):
            report("E14", f"{seed:>4} | {label:>8} {r.recall:>7.3f} "
                          f"{r.latency_p50:>7.1f}s {r.failovers:>9} "
                          f"{r.ops_gave_up:>7}")
    record("E14", scale=scale, runs=[
        {"seed": seed, "mode": label,
         "wall_clock_s": round(walls[flag], 3),
         "recall": round(r.recall, 4),
         "rows": r.queries_complete,
         "query_messages": r.query_messages,
         "total_messages": r.total_messages,
         "failovers": r.failovers, "ops_gave_up": r.ops_gave_up}
        for seed, on, off, walls in series
        for label, flag, r in (("failover", True, on),
                               ("baseline", False, off))
    ])

    # The headline claim: under the same churn timeline, failover-
    # enabled queries achieve strictly higher recall on every seed.
    for seed, on, off, _walls in series:
        assert on.recall > off.recall, (
            f"failover did not improve recall on seed {seed}: "
            f"{on.recall:.3f} vs {off.recall:.3f}"
        )
    # Failover actually engaged, and it converts timeout storms into
    # sub-timeout routing detours (lower median latency).
    assert all(on.failovers > 0 for _s, on, _off, _w in series)
    assert sum(on.latency_p50 for _s, on, _off, _w in series) < \
        sum(off.latency_p50 for _s, _on, off, _w in series)
