"""E18 — scale-out: one 10k-peer deployment on both transports.

The tentpole claim of the transport refactor: the same P-Grid
deployment (trie assignment, sampled routing tables, preloaded replica
groups, query waves, churn trace) runs unchanged on the single-loop
``InProcessTransport`` and on the windowed ``ShardedTransport``, and
sharding pays for itself at scale even inside one process — the
per-shard event queues and the leaner windowed send path beat the one
big heap.

Two scenarios, each at every engine configuration (in-process
baseline, 2 shards, 4 shards):

* **routing** — all peers online, five waves of retrieves; engines
  must agree *exactly* on success counts (the deployment fixes every
  outcome when nothing churns).
* **churn** — the same deployment under a precomputed exponential
  outage trace; engines agree statistically (close success rates).

Wall-clock is best-of-N with the cyclic GC paused during each timed
run (both engines allocate heavily; collector pauses otherwise
dominate the few-percent margins being measured).  Peak RSS is
reported per engine.  ``REPRO_BENCH_E18_PEERS`` overrides the peer
count (CI's scale-smoke job runs 5000).
"""

import gc
import os

from conftest import report, run_once
from record import record

from repro.pgrid.scaleout import (
    ScaleoutSpec,
    build_deployment,
    run_inprocess,
    run_sharded,
)


def _spec(scale, churn, num_shards=4):
    peers = int(os.environ.get("REPRO_BENCH_E18_PEERS", "0"))
    if not peers:
        peers = 10_000 if scale == "full" else 2_000
    quick = peers < 5_000
    return ScaleoutSpec(
        num_peers=peers,
        num_shards=num_shards,
        churn=churn,
        num_keys=200 if quick else 1000,
        ops_per_wave=100 if quick else 200,
        num_waves=3 if quick else 5,
        duration=60.0 if quick else 120.0,
    )


def _timed(run, repeats):
    """Best-of-``repeats`` with the cyclic GC paused during each run.

    Returns ``(best_report, [wall_clock_s, ...])``.  Every engine gets
    the identical treatment, so collector scheduling cannot tilt the
    comparison either way.
    """
    best, walls = None, []
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            result = run()
        finally:
            gc.enable()
        walls.append(result.wall_clock_s)
        if best is None or result.wall_clock_s < best.wall_clock_s:
            best = result
    return best, walls


def test_e18_scaleout(benchmark, scale):
    repeats = 3 if scale == "full" else 2
    shard_counts = (2, 4)

    def run():
        results = {}
        for scenario in ("routing", "churn"):
            churn = scenario == "churn"
            deployment = build_deployment(_spec(scale, churn))
            rows = {}
            rows["inprocess"] = _timed(
                lambda: run_inprocess(_spec(scale, churn), deployment),
                repeats)
            for shards in shard_counts:
                spec = _spec(scale, churn, num_shards=shards)
                rows[f"sharded{shards}"] = _timed(
                    lambda: run_sharded(spec, deployment), repeats)
            results[scenario] = rows
        return results

    results = run_once(benchmark, run)

    spec = _spec(scale, False)
    report("E18", f"{spec.num_peers} peers, "
                  f"{spec.num_waves}x{spec.ops_per_wave} retrieves, "
                  f"best of {repeats} (gc paused during timed runs)")
    rows = []
    for scenario, engines in results.items():
        report("E18", f"{scenario:>8} | {'engine':>10} {'wall s':>8} "
                      f"{'success':>8} {'hops':>6} {'msgs':>9} "
                      f"{'rss MB':>7}")
        for label, (best, walls) in engines.items():
            report("E18",
                   f"{'':>8} | {label:>10} {best.wall_clock_s:>8.3f} "
                   f"{best.successes:>8} {best.mean_hops:>6.2f} "
                   f"{best.messages_sent:>9} "
                   f"{best.peak_rss_kb / 1024:>7.0f}")
            summary = best.summary()
            summary.update(scenario=scenario, label=label,
                           wall_clock_runs_s=[round(w, 3) for w in walls])
            rows.append(summary)
    record("E18", scale=scale, runs=rows,
           totals={"num_peers": spec.num_peers, "repeats": repeats,
                   "shard_counts": list(shard_counts)})

    # Every engine completes the full workload.
    for engines in results.values():
        for best, _walls in engines.values():
            assert best.ops_completed == best.ops_issued
    # All-online, the deployment fixes every outcome: engines agree
    # exactly on the success count (and everything succeeds — the
    # tables were sampled with full per-level coverage).
    routing = {label: best for label, (best, _w) in
               results["routing"].items()}
    baseline = routing["inprocess"]
    assert baseline.successes == baseline.ops_issued
    for best in routing.values():
        assert best.successes == baseline.successes
    # Under churn the engines interleave deliveries differently, so
    # recall matches statistically, not bit-for-bit.
    churned = {label: best for label, (best, _w) in
               results["churn"].items()}
    for best in churned.values():
        assert abs(best.success_rate
                   - churned["inprocess"].success_rate) < 0.05
    # The tentpole perf claim: at scale, >= 2 shards beats the
    # single-loop baseline on wall-clock.  Below ~5k peers the window
    # protocol's barrier overhead is not yet amortized, so the small
    # quick configuration only reports the numbers.
    if spec.num_peers >= 5_000:
        best_sharded = min(
            best.wall_clock_s for label, (best, _w) in
            results["routing"].items() if label != "inprocess")
        assert best_sharded < routing["inprocess"].wall_clock_s
