"""E11 (extension) — §2.2: what the *order-preserving* hash buys.

The paper specifies an order-preserving hash but its demo only
exercises exact-key lookups.  This extension benchmark completes the
picture: order preservation keeps all values with a shared string
prefix in one contiguous key interval, so ``prefix%`` searches resolve
with a handful of subtree range queries (the P-Grid "shower")
instead of flooding every peer.

Series: for growing corpora, messages and latency of a prefix search
via (a) the range protocol vs (b) the only alternative available to a
uniform hash — broadcasting the scan to all peers (modelled at its
theoretical best: one message per peer).
"""

from conftest import report, run_once

from repro import GridVineNetwork, Literal, Schema, Triple, URI
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import Variable


def build_corpus(num_entries, seed=19):
    net = GridVineNetwork.build(num_peers=64, seed=seed)
    schema = Schema("S", ["organism"], domain="e11")
    net.insert_schema(schema)
    triples = []
    for i in range(num_entries):
        genus = "Aspergillus" if i % 3 == 0 else "Saccharomyces"
        triples.append(Triple(
            URI(f"S:e{i}"), URI("S#organism"),
            Literal(f"{genus} strain {i:04d}")))
    net.insert_triples(triples)
    net.settle()
    expected = sum(1 for i in range(num_entries) if i % 3 == 0)
    return net, expected


def test_e11_prefix_search_vs_broadcast(benchmark, scale):
    sizes = [60, 120] if scale == "quick" else [60, 120, 240, 480]

    def run():
        rows = []
        for num_entries in sizes:
            net, expected = build_corpus(num_entries)
            x = Variable("x")
            query = ConjunctiveQuery(
                [TriplePattern(x, Variable("p"), Literal("Aspergillus%"))],
                [x])
            net.network.metrics.reset()
            outcome = net.search_for(query, strategy="local")
            messages = net.metrics_snapshot()["messages_sent"]
            broadcast_floor = len(net.peers)  # >= 1 msg/peer, no replies
            rows.append((num_entries, expected, outcome.result_count,
                         messages, broadcast_floor, outcome.latency))
        return rows

    rows = run_once(benchmark, run)
    report("E11", f"{'entries':>8} {'expected':>9} {'found':>6} "
                  f"{'range msgs':>11} {'broadcast>=':>12} {'latency':>8}")
    for entries, expected, found, messages, floor, latency in rows:
        report("E11", f"{entries:>8} {expected:>9} {found:>6} "
                      f"{messages:>11} {floor:>12} {latency:>7.2f}s")

    for _entries, expected, found, messages, floor, _latency in rows:
        assert found == expected          # complete answers
        assert messages < 3 * floor       # far from full-network cost
