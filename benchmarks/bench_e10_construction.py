"""E10 (ablation) — §2.1: decentralized trie construction.

Paper claim: P-Grid is "a self-organizing and distributed access
structure" that "associates logical peers ... with data keys from a
binary key space".  The reproduction offers two construction modes
(DESIGN.md §3): the top-down sample-driven builder used by default,
and the decentralized pairwise-exchange protocol of the original
P-Grid work.  This ablation shows the decentralized process converges
to a structure with the same routing properties the top-down builder
produces directly:

* paths become (nearly) prefix-free and cover the key space;
* mean path depth lands near ``log2(n)``;
* a routing table derived from the converged paths resolves retrieves
  with the same hop profile.
"""

import random

from conftest import report, run_once

from repro.pgrid.construction import (
    assign_paths,
    build_by_exchanges,
    populate_routing_tables,
)
from repro.pgrid.peer import PGridPeer
from repro.simnet.network import SimNetwork
from repro.util.hashing import uniform_hash
from repro.util.stats import mean


def overlay_from_assignment(assignment, seed):
    """Wire a live overlay from any node-id -> path assignment."""
    network = SimNetwork(rng=random.Random(seed))
    peers = {}
    for node_id, path in sorted(assignment.items()):
        peer = PGridPeer(node_id, path, rng=random.Random(seed))
        network.attach(peer)
        peers[node_id] = peer
    populate_routing_tables(peers, rng=random.Random(seed))
    return network, peers


def measure(network, peers, probes, seed):
    rng = random.Random(seed)
    ids = sorted(peers)
    keys = [uniform_hash(f"probe-{i}") for i in range(probes)]
    origin = peers[ids[0]]
    for i, key in enumerate(keys):
        network.loop.run_until_complete(origin.update(key, i))
    network.loop.run_until_idle()
    hops = []
    failures = 0
    for i, key in enumerate(keys):
        result = network.loop.run_until_complete(
            peers[rng.choice(ids)].retrieve(key))
        if not result.success or i not in (result.values or []):
            failures += 1
        hops.append(result.hops)
    return mean(hops), failures


def test_e10_exchange_vs_topdown(benchmark, scale):
    sizes = [32, 64] if scale == "quick" else [32, 64, 128, 256]
    probes = 60

    def run():
        rows = []
        for n in sizes:
            exchange_paths = build_by_exchanges(n, rng=random.Random(n))
            topdown_paths = assign_paths(n, rng=random.Random(n))
            ex_net, ex_peers = overlay_from_assignment(exchange_paths, n)
            td_net, td_peers = overlay_from_assignment(topdown_paths, n)
            ex_hops, ex_failures = measure(ex_net, ex_peers, probes, n)
            td_hops, td_failures = measure(td_net, td_peers, probes, n)
            ex_depth = mean([len(p) for p in exchange_paths.values()])
            td_depth = mean([len(p) for p in topdown_paths.values()])
            distinct = len({p.bits for p in exchange_paths.values()})
            rows.append((n, ex_depth, td_depth, ex_hops, td_hops,
                         ex_failures, td_failures, distinct))
        return rows

    rows = run_once(benchmark, run)
    report("E10", f"{'peers':>6} {'exch depth':>11} {'topdn depth':>12} "
                  f"{'exch hops':>10} {'topdn hops':>11} "
                  f"{'exch fail':>10} {'topdn fail':>11} {'paths':>6}")
    for n, ed, td, eh, th, ef, tf, distinct in rows:
        report("E10", f"{n:>6} {ed:>11.2f} {td:>12.2f} {eh:>10.2f} "
                      f"{th:>11.2f} {ef:>10} {tf:>11} {distinct:>6}")

    import math
    for n, ex_depth, td_depth, ex_hops, td_hops, ex_f, td_f, distinct in rows:
        # both builders land near log2(n) depth and resolve everything
        assert abs(ex_depth - math.log2(n)) <= 2.5
        assert ex_f == 0 and td_f == 0
        # exchange construction individualizes almost every peer
        assert distinct >= 0.8 * n
        # hop profiles comparable (within 2 hops of each other)
        assert abs(ex_hops - td_hops) <= 2.0
