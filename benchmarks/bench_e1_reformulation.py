"""E1 — Figure 2: query reformulation across a schema mapping.

Paper claim (Fig. 2): the query
``SearchFor(x1? : (x1?, EMBL#Organism, %Aspergillus%))`` is
reformulated through the ``EMBL#Organism -> EMP#SystematicName``
mapping into ``SearchFor(x2? : (x2?, EMP#SystematicName,
%Aspergillus%))``; the aggregate answer is the union
``x1 = {EMBL:A78712, EMBL:A78767}``, ``x2 = NEN94295-05``.

The bench reproduces the figure literally (same identifiers) and
measures the cost of the reformulated query under both strategies.
"""

from conftest import report, run_once

from repro import GridVineNetwork, Literal, Schema, Triple, URI
from repro.rdf.parser import parse_search_for

QUERY = "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"


def build_figure2_network():
    net = GridVineNetwork.build(num_peers=64, seed=7)
    embl = Schema("EMBL", ["Organism", "SeqLength"], domain="bio")
    emp = Schema("EMP", ["SystematicName", "Length"], domain="bio")
    net.insert_schema(embl)
    net.insert_schema(emp)
    net.insert_triples([
        Triple(URI("EMBL:A78712"), URI("EMBL#Organism"),
               Literal("Aspergillus niger")),
        Triple(URI("EMBL:A78767"), URI("EMBL#Organism"),
               Literal("Aspergillus awamori")),
        Triple(URI("EMP:NEN94295-05"), URI("EMP#SystematicName"),
               Literal("Aspergillus oryzae")),
    ])
    net.create_mapping(embl, emp, [("Organism", "SystematicName")])
    net.settle()
    return net


def test_e1_figure2_reformulation(benchmark):
    net = build_figure2_network()

    def run():
        return net.search_for(QUERY, strategy="iterative")

    outcome = run_once(benchmark, run)

    expected_x1 = {"<EMBL:A78712>", "<EMBL:A78767>"}
    expected_x2 = {"<EMP:NEN94295-05>"}
    got = {str(r[0]) for r in outcome.results}
    report("E1", f"query: {QUERY}")
    emp_query = parse_search_for(
        "SearchFor(x? : (x?, EMP#SystematicName, %Aspergillus%))")
    x1 = {str(r[0]) for q, rows in outcome.results_by_query.items()
          if q != emp_query for r in rows}
    x2 = {str(r[0]) for r in outcome.results_by_query.get(emp_query, ())}
    report("E1", f"x1 (EMBL answers)          : {sorted(x1)}  "
                 f"(paper: A78712, A78767)")
    report("E1", f"x2 (EMP answers via mapping): {sorted(x2)}  "
                 f"(paper: NEN94295-05)")
    report("E1", f"union size {len(got)} (paper: 3), "
                 f"reformulations {outcome.reformulations_explored} "
                 f"(paper: 1)")
    assert got == expected_x1 | expected_x2
    assert x1 == expected_x1
    assert x2 == expected_x2


def test_e1_strategies_agree(benchmark):
    net = build_figure2_network()

    def run():
        return {
            strategy: net.search_for(QUERY, strategy=strategy)
            for strategy in ("local", "iterative", "recursive")
        }

    outcomes = run_once(benchmark, run)
    report("E1", "strategy comparison on Figure 2:")
    for strategy, outcome in outcomes.items():
        report("E1", f"  {strategy:<10} results={outcome.result_count} "
                     f"latency={outcome.latency:.2f}s(sim)")
    assert outcomes["local"].result_count == 2
    assert (outcomes["iterative"].results
            == outcomes["recursive"].results)
